"""Job identity, lifecycle, and the v3 job envelope.

A *job* is one queued request (optimize or batch) with a typed lifecycle::

    queued ──► running ──► done
       │          ├──────► failed
       └──────────┴──────► cancelled

Transitions only ever move rightward (enforced by
:meth:`JobRecord.transition`); ``done`` / ``failed`` / ``cancelled`` are
terminal. The one deliberate exception is :meth:`JobRecord.requeue` —
``running → queued`` — used exactly twice: by crash recovery (a job that
was mid-flight when the process died) and by the transient-failure retry
path. Every transition appends a ``"state"``
:class:`~repro.serve.events.ProgressEvent` (requeues carry a ``reason``),
so the event stream alone reconstructs the whole lifecycle.

Job ids are **content-derived**: the canonical digest of the request's v3
envelope (:func:`repro.api.requests.request_to_dict`). Two submissions of
the same problem therefore address the same job — the manager dedupes
live/completed jobs into one record — while a rerun after a failure or
cancellation gets a fresh ``-r<N>`` suffixed id, keeping ids stable *and*
unique.

Three views of one job:

* :class:`JobRecord` — the manager's mutable, lock-guarded truth.
* :class:`JobHandle` — the in-process API: await, stream, cancel.
* :class:`JobInfo` — the frozen wire snapshot both the HTTP server and
  the client speak (``to_dict`` / ``from_dict`` round-trips the
  envelope).
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.api.requests import (
    RESPONSE_SCHEMA_VERSION,
    AnalyzeRequest,
    AnalyzeResponse,
    BatchRequest,
    BatchResponse,
    CostrategyRequest,
    CostrategyResponse,
    OptimizeRequest,
    OptimizeResponse,
    check_schema_version,
    request_kind,
    request_to_dict,
)
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.serve.events import ProgressEvent
from repro.utils.canonical import digest
from repro.utils.errors import ConfigurationError, JobCancelled, ReproError


class JobState(enum.Enum):
    """Typed job lifecycle states."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Per-job event-log bound. Sequence numbers stay global (``num_events``
#: counts everything ever emitted), but only the newest this-many events
#: are retained for ``?after`` reads — a huge sweep must not pin one dict
#: per cell in server memory forever. Streams that fall further behind
#: simply resume at the oldest retained event; the terminal ``state``
#: event is always the newest, so lifecycle observation never degrades.
EVENT_LOG_LIMIT = 10_000

#: The legal transition relation (see the module docstring's diagram).
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def resolve_state(value: JobState | str) -> JobState:
    """Coerce a state name (the wire form) back to the enum."""
    if isinstance(value, JobState):
        return value
    try:
        return JobState(value)
    except ValueError:
        raise ConfigurationError(
            f"unknown job state {value!r}; expected one of "
            f"{[state.value for state in JobState]}"
        ) from None


def job_content_key(request: OptimizeRequest | BatchRequest | AnalyzeRequest) -> str:
    """The content address job ids derive from (full canonical digest)."""
    return digest(request_to_dict(request))


def derive_job_id(content_key: str, rerun: int = 0) -> str:
    """A job id from a content key: ``job-<digest12>`` (+ ``-r<N>`` reruns)."""
    base = f"job-{content_key[:12]}"
    return base if rerun == 0 else f"{base}-r{rerun}"


def _raise_job_failure(state: JobState, error: str, job_id: str) -> None:
    """The one terminal-state → exception mapping.

    Both result surfaces — :meth:`JobHandle.result` (in-process) and
    :meth:`JobInfo.response` (decoded from the wire) — go through this,
    so a remote job's outcome raises exactly like a local one.
    """
    if state is JobState.CANCELLED:
        raise JobCancelled(error or f"job {job_id} was cancelled")
    if state is JobState.FAILED:
        raise ReproError(error or f"job {job_id} failed")


class JobRecord:
    """The manager-owned mutable state of one job.

    All mutation happens through :meth:`transition` / :meth:`emit` /
    :meth:`set_result` while holding :attr:`cond` — waiters
    (:meth:`JobHandle.result`, event streams, the HTTP front end) block on
    the same condition, so every append wakes them exactly once.

    ``sink``, when given, receives ``(record, event)`` for every emitted
    event *before* waiters wake — the persistence seam: the manager's
    store sink appends the event (and, on state events, the record) to
    the durable store, so anything a waiter ever observed is at least as
    persistent as the fsync policy promises. Sink failures are the
    sink's problem to contain; they must not raise into ``emit``.
    """

    def __init__(
        self,
        job_id: str,
        request: OptimizeRequest | BatchRequest | AnalyzeRequest,
        content_key: str,
        sink=None,
    ):
        self.id = job_id
        self.request = request
        self.kind = request_kind(request)
        self.content_key = content_key
        self.state = JobState.QUEUED
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error = ""
        self.result: OptimizeResponse | BatchResponse | AnalyzeResponse | None = None
        self.events: list[ProgressEvent] = []
        self.next_seq = 0  # total events ever emitted (ring may drop old)
        self.attempts = 0  # transient-failure requeues so far
        # Bumped (under cond) each time a worker thread transitions this
        # record to RUNNING. A finishing thread may only apply a terminal
        # outcome while its own generation is still current — a record
        # requeued and re-run under it (fleet lease loss + reclaim) must
        # not have the stale thread's outcome land on the new attempt.
        self.run_generation = 0
        self.sink = sink
        self.cancel_requested = threading.Event()
        self.cond = threading.Condition()
        # The record owns its whole event stream, including the initial
        # queued event — one owner for the state-event shape.
        with self.cond:
            self.emit("state", {"state": self.state.value})

    @classmethod
    def restore(
        cls,
        job_id: str,
        request: OptimizeRequest | BatchRequest | AnalyzeRequest,
        content_key: str,
        *,
        state: JobState,
        created_at: float,
        started_at: float | None,
        finished_at: float | None,
        error: str,
        result: OptimizeResponse | BatchResponse | AnalyzeResponse | None,
        events: list[ProgressEvent],
        attempts: int = 0,
        sink=None,
    ) -> "JobRecord":
        """Rebuild a record from durable state without emitting anything.

        The recovery path's constructor: the replayed events *are* the
        history, so no fresh queued event is emitted (that would double
        seq 0). ``next_seq`` continues from the replayed log — the log,
        not any persisted counter, is the truth about what a client could
        have seen; events lost past the last fsync simply never happened.
        Only the newest :data:`EVENT_LOG_LIMIT` events stay in memory
        (same ring bound as a live record).
        """
        record = cls.__new__(cls)
        record.id = job_id
        record.request = request
        record.kind = request_kind(request)
        record.content_key = content_key
        record.state = state
        record.created_at = created_at
        record.started_at = started_at
        record.finished_at = finished_at
        record.error = error
        record.result = result
        record.events = events[-EVENT_LOG_LIMIT:]
        record.next_seq = events[-1].seq + 1 if events else 0
        record.attempts = attempts
        record.run_generation = 0
        record.sink = sink
        record.cancel_requested = threading.Event()
        record.cond = threading.Condition()
        return record

    @property
    def events_base(self) -> int:
        """Sequence number of the oldest *retained* event."""
        return self.next_seq - len(self.events)

    # -- mutation (hold self.cond) ------------------------------------------

    def emit(self, kind: str, data: dict) -> ProgressEvent:
        """Append one event and wake every waiter. Caller holds ``cond``.

        The log is a bounded ring (:data:`EVENT_LOG_LIMIT`): sequence
        numbers keep counting, the oldest retained events fall off.
        """
        event = ProgressEvent(
            seq=self.next_seq,
            job_id=self.id,
            kind=kind,
            at=time.time(),
            data=data,
        )
        self.next_seq += 1
        self.events.append(event)
        overflow = len(self.events) - EVENT_LOG_LIMIT
        if overflow > 0:
            del self.events[:overflow]
        if self.sink is not None:
            # Persist before waking waiters: nothing becomes observable
            # until the durable store has (at least batched) the event.
            self.sink(self, event)
        self.cond.notify_all()
        return event

    def transition(self, state: JobState, error: str = "") -> None:
        """Move to ``state``, stamping timestamps and the state event.

        Caller holds ``cond``. Illegal moves (anything out of a terminal
        state, skipping ``running`` into ``done``/``failed``) raise — a
        lifecycle bug must be loud, not silently recorded.
        """
        if state not in _TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state
        if state is JobState.RUNNING:
            self.started_at = time.time()
        if state in TERMINAL_STATES:
            self.finished_at = time.time()
            self.error = error
        data = {"state": state.value}
        if error:
            data["error"] = error
        self.emit("state", data)

    def requeue(self, reason: str) -> None:
        """Move a non-terminal job back to ``queued`` — the one leftward edge.

        Used by crash recovery (the process died while this job was
        queued or running) and by transient-failure retry; ``reason``
        lands in the state event's data so the stream explains the loop.
        Kept out of :data:`_TRANSITIONS` deliberately: the relation stays
        rightward-only and this documented exception stays greppable.
        Caller holds ``cond``. Requeueing a terminal job raises.
        """
        if self.state in TERMINAL_STATES:
            raise ConfigurationError(
                f"job {self.id}: cannot requeue from terminal state "
                f"{self.state.value}"
            )
        self.state = JobState.QUEUED
        self.started_at = None
        self.emit("state", {"state": self.state.value, "reason": reason})

    # -- snapshots -----------------------------------------------------------

    def info(self, include_result: bool = True) -> "JobInfo":
        """A frozen wire snapshot. Caller need not hold ``cond``."""
        with self.cond:
            result = self.result
            metrics = {}
            if self.started_at is not None:
                metrics["queue_s"] = round(
                    self.started_at - self.created_at, 6
                )
                if self.finished_at is not None:
                    metrics["run_s"] = round(
                        self.finished_at - self.started_at, 6
                    )
            if self.finished_at is not None:
                metrics["total_s"] = round(
                    self.finished_at - self.created_at, 6
                )
            if self.attempts:
                metrics["attempts"] = self.attempts
            return JobInfo(
                id=self.id,
                kind=self.kind,
                state=self.state,
                created_at=self.created_at,
                started_at=self.started_at,
                finished_at=self.finished_at,
                error=self.error,
                num_events=self.next_seq,
                result_payload=(
                    result.to_dict()
                    if include_result and result is not None
                    else None
                ),
                metrics=metrics or None,
            )


@dataclass(frozen=True)
class JobInfo:
    """The job envelope both sides of the wire speak.

    Attributes:
        id: Content-derived job id.
        kind: ``"optimize"``, ``"batch"``, ``"analyze"``, or
            ``"costrategy"``.
        state: Current lifecycle state.
        created_at: Submission wall-clock time.
        started_at: When the worker picked the job up; ``None`` while queued.
        finished_at: Terminal-transition time; ``None`` until terminal.
        error: Failure/cancellation description; empty otherwise.
        num_events: Events emitted so far (the stream cursor's upper bound).
        result_payload: The response ``to_dict`` payload once ``done``
            (``None`` otherwise, and in list summaries).
        metrics: Lifecycle latencies derived from the timestamps —
            ``queue_s`` (submit → running) once started, plus ``run_s``
            and ``total_s`` once terminal, and ``attempts`` when the job
            was ever requeued after a transient failure. ``None`` while
            queued.
    """

    id: str
    kind: str
    state: JobState
    created_at: float
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    num_events: int = 0
    result_payload: dict | None = None
    metrics: dict | None = None

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def response(
        self,
    ) -> OptimizeResponse | BatchResponse | AnalyzeResponse | CostrategyResponse:
        """Decode the result payload into the typed response value.

        Raises the job's own failure (:class:`JobCancelled` for cancelled
        jobs, :class:`ReproError` for failed ones) instead of returning —
        a remote job's outcome surfaces exactly like a local call's.
        """
        _raise_job_failure(self.state, self.error, self.id)
        if self.result_payload is None:
            raise ConfigurationError(
                f"job {self.id} is {self.state.value}; no result to decode "
                "(fetch the job by id for the full envelope)"
            )
        if self.kind == "batch":
            return BatchResponse.from_dict(self.result_payload)
        if self.kind == "analyze":
            return AnalyzeResponse.from_dict(self.result_payload)
        if self.kind == "costrategy":
            return CostrategyResponse.from_dict(self.result_payload)
        return OptimizeResponse.from_dict(self.result_payload)

    def to_dict(self) -> dict:
        """The v3 job envelope; inverse of :meth:`from_dict`."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "job": {
                "id": self.id,
                "kind": self.kind,
                "state": self.state.value,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "events": self.num_events,
                "result": self.result_payload,
                "metrics": self.metrics,
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobInfo":
        """Rebuild a snapshot from the v3/v4 job envelope."""
        check_schema_version(
            payload, (3, 4, RESPONSE_SCHEMA_VERSION), "job envelope"
        )
        job = payload.get("job")
        if not isinstance(job, Mapping):
            raise ConfigurationError("job envelope is missing its 'job' object")
        try:
            started = job.get("started_at")
            finished = job.get("finished_at")
            result = job.get("result")
            metrics = job.get("metrics")
            return cls(
                id=str(job["id"]),
                kind=str(job["kind"]),
                state=resolve_state(job["state"]),
                created_at=float(job["created_at"]),
                started_at=None if started is None else float(started),
                finished_at=None if finished is None else float(finished),
                error=str(job.get("error", "")),
                num_events=int(job.get("events", 0)),
                result_payload=None if result is None else dict(result),
                metrics=None if metrics is None else dict(metrics),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed job envelope: {exc}"
            ) from exc


class JobHandle:
    """The in-process face of a job: poll, await, stream, cancel.

    Handles are cheap views over the manager's :class:`JobRecord`; any
    number may exist per job and all observe the same state.
    """

    def __init__(self, record: JobRecord):
        self._record = record

    @property
    def id(self) -> str:
        return self._record.id

    @property
    def kind(self) -> str:
        return self._record.kind

    @property
    def state(self) -> JobState:
        with self._record.cond:
            return self._record.state

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def info(self, include_result: bool = True) -> JobInfo:
        """The current wire snapshot."""
        return self._record.info(include_result=include_result)

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        A queued job cancels immediately; a running one raises its
        ``should_stop`` flag and cancels at the next solver/sweep
        checkpoint. Returns False when the job already reached a terminal
        state (cancelling a finished job is a no-op, not an error).
        """
        record = self._record
        cancelled_queued = False
        with record.cond:
            if record.state in TERMINAL_STATES:
                return False
            record.cancel_requested.set()
            if record.state is JobState.QUEUED:
                record.transition(JobState.CANCELLED, error="cancelled while queued")
                cancelled_queued = True
        if cancelled_queued:
            # A queued job never reaches the worker's terminal accounting
            # (JobManager._run returns early), so it is counted here.
            obs_metrics.get_registry().counter(
                obs_names.JOBS_COMPLETED,
                "Jobs reaching a terminal state.",
                labels=("state",),
            ).labels(state=JobState.CANCELLED.value).inc()
        return True

    def wait(self, timeout: float | None = None) -> JobState:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        record = self._record
        deadline = None if timeout is None else time.monotonic() + timeout
        with record.cond:
            while record.state not in TERMINAL_STATES:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                record.cond.wait(remaining)
            return record.state

    def result(
        self, timeout: float | None = None
    ) -> OptimizeResponse | BatchResponse | AnalyzeResponse:
        """Await the response value; raise the job's failure instead.

        :class:`JobCancelled` for cancelled jobs, :class:`ReproError` for
        failed ones, :class:`ConfigurationError` on timeout — so
        ``manager.submit(req).result()`` behaves exactly like the
        blocking ``service.submit(req)`` it replaces.
        """
        state = self.wait(timeout)
        record = self._record
        with record.cond:
            if record.state not in TERMINAL_STATES:
                raise ConfigurationError(
                    f"job {record.id} still {state.value} after "
                    f"{timeout:g}s; poll, stream, or wait longer"
                )
            _raise_job_failure(record.state, record.error, record.id)
            assert record.result is not None  # DONE always carries a result
            return record.result

    def events(self, after: int = 0) -> list[ProgressEvent]:
        """Events with ``seq >= after``, without blocking.

        ``after`` is a sequence number, clamped to 0 — a negative value
        must not Python-slice from the tail (that would replay events out
        of order and break ``?after=seq`` resume). A cursor older than
        the bounded log's oldest retained event resumes there instead.
        """
        record = self._record
        with record.cond:
            start = max(0, after, record.events_base)
            return list(record.events[start - record.events_base:])

    def stream(
        self, after: int = 0, timeout: float | None = None
    ) -> Iterator[ProgressEvent]:
        """Yield events as they arrive until the job is terminal.

        The terminal ``"state"`` event is always the last one emitted, so
        the stream is exhaustive: every event of the job's life passes
        through exactly once (from ``after`` onward). ``timeout`` bounds
        each *wait between events*, raising :class:`ConfigurationError`
        on expiry — a stalled stream is a caller-visible fault, not a
        silent hang.
        """
        record = self._record
        cursor = max(0, after)  # a seq cursor, never a negative slice
        while True:
            with record.cond:
                while (
                    record.next_seq <= cursor
                    and record.state not in TERMINAL_STATES
                ):
                    if not record.cond.wait(timeout):
                        raise ConfigurationError(
                            f"job {record.id}: no event within {timeout:g}s"
                        )
                # Clamp to the bounded log: a cursor that fell behind the
                # ring resumes at the oldest retained event.
                start = max(cursor, record.events_base)
                batch = list(record.events[start - record.events_base:])
                terminal = record.state in TERMINAL_STATES
            if batch:
                cursor = batch[-1].seq + 1
            yield from batch
            if terminal and not batch:
                return
            if terminal:
                # Drain once more in case events landed between the
                # snapshot and the yields; the next loop exits when empty.
                continue

"""The :class:`JobManager`: a bounded worker pool over :class:`LibraService`.

The manager is the redesign's pivot: where PR 3's ``service.submit()``
blocks its caller for the whole solve, ``manager.submit()`` returns a
:class:`~repro.serve.jobs.JobHandle` immediately and a pool thread runs
the request — polling the job's cancel flag through the service's
``should_stop`` seam and fanning the executor's progress dicts out as
:class:`~repro.serve.events.ProgressEvent`\\ s. One manager multiplexes
any number of clients over one (thread-safe) service instance, so engine
and solution memos are shared across all jobs.

Threads, not processes, are the pool substrate: a job's real parallelism
lives *inside* the request (``BatchRequest.workers`` drives the explore
engine's process pool), so job workers spend their life waiting on numpy/
scipy code that releases the GIL or on child processes. ``workers`` here
bounds *concurrent jobs*, not solver parallelism.

Typical session::

    from repro.api import OptimizeRequest, build_scenario
    from repro.serve import JobManager

    with JobManager(workers=2) as manager:
        handle = manager.submit(OptimizeRequest(scenario=build_scenario(
            "4D-4K", ["GPT-3"], total_bw_gbps=500)))
        progress = [(e.kind, e.data) for e in handle.stream()]
        response = handle.result()
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.api.requests import BatchRequest, OptimizeRequest
from repro.api.service import LibraService
from repro.obs import get_logger
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.serve.jobs import (
    TERMINAL_STATES,
    JobHandle,
    JobRecord,
    JobState,
    derive_job_id,
    job_content_key,
)
from repro.utils.errors import ConfigurationError, JobCancelled

_log = get_logger("serve.manager")


class JobManager:
    """Queue requests onto a bounded worker pool; hand back job handles.

    Args:
        service: The request executor; a fresh :class:`LibraService` when
            omitted. Must be thread-safe (the stock service is).
        workers: Concurrent-job bound (pool threads). Queued jobs beyond
            it wait in submission order.
        max_jobs: Job-table capacity. Submission evicts the oldest
            *terminal* jobs past the bound and refuses outright when the
            table is full of live ones — backpressure beats unbounded
            memory growth in a long-running server.
        evict_grace_s: How long a terminal job is immune from eviction
            after finishing. A submitter that just streamed a job to
            completion still has to fetch its result by id; without the
            grace window, a burst of other submissions could evict the
            finished job between those two steps and turn its success
            into a 404.
    """

    def __init__(
        self,
        service: LibraService | None = None,
        workers: int = 2,
        max_jobs: int = 256,
        evict_grace_s: float = 60.0,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_jobs < 1:
            raise ConfigurationError(f"max_jobs must be >= 1, got {max_jobs}")
        if evict_grace_s < 0:
            raise ConfigurationError(
                f"evict_grace_s must be >= 0, got {evict_grace_s}"
            )
        self._evict_grace_s = evict_grace_s
        self.service = service if service is not None else LibraService()
        self._max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, JobRecord] = OrderedDict()
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self.register_gauges(obs_metrics.get_registry())

    def register_gauges(self, registry) -> None:
        """Point the live-depth gauges at this manager.

        Callback gauges, deliberately: queue depth and active count are
        computed at *scrape* time from :meth:`counts` rather than eagerly
        bumped from job transitions — transition code holds each record's
        condition lock, and taking the manager lock under it would invert
        the manager-lock → record-cond ordering ``submit`` relies on.
        Re-invoked by the HTTP server once metrics are enabled (the
        constructor call is a no-op under the null registry).
        """
        registry.gauge(
            obs_names.JOB_QUEUE_DEPTH, "Jobs queued but not yet running."
        ).set_function(lambda: self.counts()["queued"])
        registry.gauge(
            obs_names.JOBS_ACTIVE, "Jobs currently running."
        ).set_function(lambda: self.counts()["running"])

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the /healthz and gauge snapshot)."""
        with self._lock:
            records = list(self._jobs.values())
        tallies = {state.value: 0 for state in JobState}
        for record in records:
            with record.cond:
                tallies[record.state.value] += 1
        return tallies

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: OptimizeRequest | BatchRequest,
        *,
        dedupe: bool = True,
    ) -> JobHandle:
        """Queue one request; return its handle immediately.

        Job ids are content-derived, and by default submission is
        *idempotent over live and successful work*: re-submitting a
        payload whose job is queued, running, or done returns the
        existing handle (clients retrying over a flaky link never fork
        duplicate solves). A payload whose previous job failed or was
        cancelled gets a fresh ``-r<N>`` id — reruns after failure are
        the one case where "same content" must mean "new attempt".
        ``dedupe=False`` forces a fresh job unconditionally.
        """
        content_key = job_content_key(request)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "job manager is shut down; no new submissions"
                )
            if dedupe:
                for record in reversed(self._jobs.values()):
                    if record.content_key != content_key:
                        continue
                    with record.cond:
                        reusable = record.state not in (
                            JobState.FAILED, JobState.CANCELLED
                        )
                    if reusable:
                        return JobHandle(record)
                    break  # most recent attempt failed/cancelled: rerun
            rerun = 0
            job_id = derive_job_id(content_key, rerun)
            while job_id in self._jobs:
                rerun += 1
                job_id = derive_job_id(content_key, rerun)
            self._evict_terminal()
            record = JobRecord(job_id, request, content_key)  # emits queued
            self._jobs[job_id] = record
            # Scheduling happens under the manager lock: shutdown() flips
            # _closed under the same lock before it stops the pool, so a
            # submission that passed the _closed check above cannot race
            # the pool into RuntimeError. The guard below is a belt for
            # exotic interpreter shutdown paths only.
            try:
                self._pool.submit(self._run, record)
            except RuntimeError as exc:
                with record.cond:
                    record.transition(
                        JobState.CANCELLED, error=f"worker pool unavailable: {exc}"
                    )
                raise ConfigurationError(
                    "job manager is shut down; no new submissions"
                ) from exc
        obs_metrics.get_registry().counter(
            obs_names.JOBS_SUBMITTED,
            "Jobs accepted into the queue (dedupe hits excluded).",
            labels=("kind",),
        ).labels(kind=record.kind).inc()
        _log.info(
            "job queued",
            extra={"fields": {"job": record.id, "kind": record.kind}},
        )
        return JobHandle(record)

    def _evict_terminal(self) -> None:
        """Keep the job table bounded. Caller holds the manager lock.

        Only terminal jobs *past the grace window* are evictable — a
        just-finished job's submitter may still be about to fetch its
        result. A table full of live or freshly finished jobs refuses
        the submission instead (backpressure).
        """
        while len(self._jobs) >= self._max_jobs:
            victim = None
            now = time.time()
            for job_id, record in self._jobs.items():
                with record.cond:
                    evictable = (
                        record.state in TERMINAL_STATES
                        and record.finished_at is not None
                        and now - record.finished_at >= self._evict_grace_s
                    )
                if evictable:
                    victim = job_id
                    break
            if victim is None:
                raise ConfigurationError(
                    f"job table is full ({self._max_jobs} live or "
                    "just-finished jobs); wait, cancel some, or raise "
                    "--max-jobs"
                )
            del self._jobs[victim]

    # -- execution -----------------------------------------------------------

    def _run(self, record: JobRecord) -> None:
        """Pool-thread entry: drive one job through its lifecycle."""
        with record.cond:
            if record.state is not JobState.QUEUED:
                return  # cancelled while queued
            record.transition(JobState.RUNNING)
            queued_s = (record.started_at or 0.0) - record.created_at
        # Latency observations happen after the condition lock is released
        # (see register_gauges for the ordering this preserves).
        registry = obs_metrics.get_registry()
        registry.histogram(
            obs_names.JOB_QUEUE_SECONDS, "Submit-to-running latency."
        ).observe(max(queued_s, 0.0))
        _log.debug(
            "job running",
            extra={"fields": {
                "job": record.id, "kind": record.kind,
                "queue_s": round(max(queued_s, 0.0), 6),
            }},
        )

        def on_event(payload: dict) -> None:
            data = dict(payload)
            kind = data.pop("type", "solve")
            with record.cond:
                record.emit(kind, data)

        try:
            with obs_trace.get_tracer().span(
                "job", attrs={"job": record.id, "kind": record.kind}
            ):
                response = self.service.submit(
                    record.request,
                    should_stop=record.cancel_requested.is_set,
                    on_event=on_event,
                )
        except JobCancelled as exc:
            with record.cond:
                record.transition(JobState.CANCELLED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — job containment contract
            with record.cond:
                record.transition(
                    JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
                )
        else:
            with record.cond:
                record.result = response
                record.transition(JobState.DONE)
        with record.cond:
            state = record.state
            error = record.error
            run_s = (
                (record.finished_at or 0.0) - (record.started_at or 0.0)
                if state in TERMINAL_STATES else 0.0
            )
        if state in TERMINAL_STATES:
            registry.histogram(
                obs_names.JOB_RUN_SECONDS, "Running-to-terminal latency."
            ).observe(max(run_s, 0.0))
            registry.counter(
                obs_names.JOBS_COMPLETED,
                "Jobs reaching a terminal state.",
                labels=("state",),
            ).labels(state=state.value).inc()
            fields = {
                "job": record.id, "kind": record.kind,
                "state": state.value, "run_s": round(max(run_s, 0.0), 6),
            }
            if error:
                fields["error"] = error
            level = _log.info if state is JobState.DONE else _log.warning
            level("job finished", extra={"fields": fields})

    # -- lookup --------------------------------------------------------------

    def get(self, job_id: str) -> JobHandle | None:
        """The handle for ``job_id``, or ``None``."""
        with self._lock:
            record = self._jobs.get(job_id)
        return None if record is None else JobHandle(record)

    def job(self, job_id: str) -> JobHandle:
        """The handle for ``job_id``; unknown ids raise."""
        handle = self.get(job_id)
        if handle is None:
            raise ConfigurationError(f"unknown job id {job_id!r}")
        return handle

    def handles(self) -> list[JobHandle]:
        """Every tracked job, oldest first."""
        with self._lock:
            return [JobHandle(record) for record in self._jobs.values()]

    def cancel(self, job_id: str) -> JobHandle:
        """Request cancellation of ``job_id``; returns its handle."""
        handle = self.job(job_id)
        handle.cancel()
        return handle

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop accepting jobs; optionally cancel what has not finished."""
        with self._lock:
            self._closed = True
            records = list(self._jobs.values())
        _log.info(
            "manager shutdown",
            extra={"fields": {
                "jobs": len(records), "cancel_pending": cancel_pending,
            }},
        )
        if cancel_pending:
            for record in records:
                JobHandle(record).cancel()
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

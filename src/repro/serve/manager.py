"""The :class:`JobManager`: a bounded worker pool over :class:`LibraService`.

The manager is the redesign's pivot: where PR 3's ``service.submit()``
blocks its caller for the whole solve, ``manager.submit()`` returns a
:class:`~repro.serve.jobs.JobHandle` immediately and a pool thread runs
the request — polling the job's cancel flag through the service's
``should_stop`` seam and fanning the executor's progress dicts out as
:class:`~repro.serve.events.ProgressEvent`\\ s. One manager multiplexes
any number of clients over one (thread-safe) service instance, so engine
and solution memos are shared across all jobs.

Threads, not processes, are the pool substrate: a job's real parallelism
lives *inside* the request (``BatchRequest.workers`` drives the explore
engine's process pool), so job workers spend their life waiting on numpy/
scipy code that releases the GIL or on child processes. ``workers`` here
bounds *concurrent jobs*, not solver parallelism.

Typical session::

    from repro.api import OptimizeRequest, build_scenario
    from repro.serve import JobManager

    with JobManager(workers=2) as manager:
        handle = manager.submit(OptimizeRequest(scenario=build_scenario(
            "4D-4K", ["GPT-3"], total_bw_gbps=500)))
        progress = [(e.kind, e.data) for e in handle.stream()]
        response = handle.result()
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.api.requests import (
    AnalyzeRequest,
    AnalyzeResponse,
    BatchRequest,
    BatchResponse,
    CostrategyRequest,
    CostrategyResponse,
    OptimizeRequest,
    OptimizeResponse,
    request_from_dict,
    request_to_dict,
)
from repro.api.service import LibraService
from repro.obs import get_logger
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.serve import faults
from repro.serve.events import ProgressEvent
from repro.serve.jobs import (
    EVENT_LOG_LIMIT,
    TERMINAL_STATES,
    JobHandle,
    JobRecord,
    JobState,
    derive_job_id,
    job_content_key,
    resolve_state,
)
from repro.serve.store import STORE_VERSION, JobStore, StoredJob
from repro.utils.errors import (
    ConfigurationError,
    JobCancelled,
    ReproError,
    TransientError,
)

_log = get_logger("serve.manager")

#: Cap on the exponential retry backoff (seconds).
MAX_RETRY_BACKOFF_S = 30.0


def _is_transient(exc: BaseException) -> bool:
    """Should this job failure be retried rather than recorded?

    :class:`~repro.utils.errors.TransientError` is the opt-in taxonomy
    (fault injection and future resource-pressure signals);
    ``BrokenProcessPool`` escaping the sweep executor's own chain-requeue
    bound means every in-process retry already failed, so one more
    job-level attempt on a fresh pool is the last line of defense.
    """
    return isinstance(exc, (TransientError, BrokenProcessPool))


class JobManager:
    """Queue requests onto a bounded worker pool; hand back job handles.

    Args:
        service: The request executor; a fresh :class:`LibraService` when
            omitted. Must be thread-safe (the stock service is).
        workers: Concurrent-job bound (pool threads). Queued jobs beyond
            it wait in submission order.
        max_jobs: Job-table capacity. Submission evicts the oldest
            *terminal* jobs past the bound and refuses outright when the
            table is full of live ones — backpressure beats unbounded
            memory growth in a long-running server.
        evict_grace_s: How long a terminal job is immune from eviction
            after finishing. A submitter that just streamed a job to
            completion still has to fetch its result by id; without the
            grace window, a burst of other submissions could evict the
            finished job between those two steps and turn its success
            into a 404.
        store: Optional :class:`~repro.serve.store.JobStore`. With one,
            every job persists (record + event log) and construction runs
            a recovery pass: persisted jobs re-enter the table, and those
            that were queued/running at crash time are requeued — batch
            jobs then resume from their cached cells. Eviction deletes
            the job's durable state along with its table entry.
        max_retries: Job-level requeues after *transient* failures
            (injected faults, pool collapse) before the job fails for
            real. Permanent errors never retry.
        retry_backoff_s: Base of the bounded exponential backoff between
            job retries (``base * 2**(attempt-1)``, capped at
            :data:`MAX_RETRY_BACKOFF_S`).
        fleet: Optional :class:`~repro.serve.fleet.FleetCoordinator`
            (requires ``store``). With one, this manager is one member
            of a multi-server fleet sharing the state dir: submissions
            claim a lease before running (losing the race to a peer
            tracks the job passively instead), the store sink only
            persists for lease-owned jobs (the event log has exactly
            one writer), recovery claims rather than assumes, and the
            coordinator's background thread renews held leases and
            takes over stale ones.
    """

    def __init__(
        self,
        service: LibraService | None = None,
        workers: int = 2,
        max_jobs: int = 256,
        evict_grace_s: float = 60.0,
        store: JobStore | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        fleet=None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_jobs < 1:
            raise ConfigurationError(f"max_jobs must be >= 1, got {max_jobs}")
        if evict_grace_s < 0:
            raise ConfigurationError(
                f"evict_grace_s must be >= 0, got {evict_grace_s}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        if fleet is not None and store is None:
            raise ConfigurationError(
                "fleet mode requires a durable store (--state-dir)"
            )
        self._evict_grace_s = evict_grace_s
        self.service = service if service is not None else LibraService()
        self._max_jobs = max_jobs
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._store = store
        self._sink = self._store_sink if store is not None else None
        self._fleet = fleet
        self.recovered_jobs = 0
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, JobRecord] = OrderedDict()
        self._closed = False
        self._retry_timers: set[threading.Timer] = set()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self.register_gauges(obs_metrics.get_registry())
        if fleet is not None:
            # Bind before recovery (recovery claims through the
            # coordinator) but start the renew/scan thread only after it,
            # so the scan never races the initial table build.
            fleet.bind(self)
        if store is not None:
            self._recover()
        if fleet is not None:
            fleet.start()

    @property
    def fleet(self):
        """The bound fleet coordinator, or ``None`` (single-server mode)."""
        return self._fleet

    def register_gauges(self, registry) -> None:
        """Point the live-depth gauges at this manager.

        Callback gauges, deliberately: queue depth and active count are
        computed at *scrape* time from :meth:`counts` rather than eagerly
        bumped from job transitions — transition code holds each record's
        condition lock, and taking the manager lock under it would invert
        the manager-lock → record-cond ordering ``submit`` relies on.
        Re-invoked by the HTTP server once metrics are enabled (the
        constructor call is a no-op under the null registry).
        """
        registry.gauge(
            obs_names.JOB_QUEUE_DEPTH, "Jobs queued but not yet running."
        ).set_function(lambda: self.counts()["queued"])
        registry.gauge(
            obs_names.JOBS_ACTIVE, "Jobs currently running."
        ).set_function(lambda: self.counts()["running"])

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the /healthz and gauge snapshot)."""
        with self._lock:
            records = list(self._jobs.values())
        tallies = {state.value: 0 for state in JobState}
        for record in records:
            with record.cond:
                tallies[record.state.value] += 1
        return tallies

    # -- persistence & recovery ----------------------------------------------

    def _record_payload(self, record: JobRecord) -> dict:
        """The durable envelope for one job (``record.json``'s content)."""
        return {
            "store_version": STORE_VERSION,
            "job": record.info().to_dict()["job"],
            "request": request_to_dict(record.request),
            "content_key": record.content_key,
            "attempts": record.attempts,
        }

    def _store_sink(self, record: JobRecord, event: ProgressEvent) -> None:
        """Per-event persistence (the :class:`JobRecord` sink).

        Event first, then (on state events) the record — so the log is
        never behind the record a crash leaves on disk. State events
        fsync through; progress events ride the store's batch window.
        Persistence failure is contained: the in-memory job keeps
        running (availability over durability) and the fault is logged —
        a full disk must degrade the server to PR 5 behavior, not kill
        every job mid-solve.

        In fleet mode the sink is strictly lease-gated: the append-only
        event log survives exactly one writer (a duplicate seq from a
        second process would truncate the gapless prefix), so a record
        this server does not hold the lease for — a passive mirror of a
        peer's job, or a job whose lease was just lost — persists
        nothing. The lease owner's sink writes the same events from its
        identical record.
        """
        if self._fleet is not None and not self._fleet.owns(record.id):
            return
        try:
            self._store.append_event(
                record.id, event.to_dict(), durable=event.kind == "state"
            )
            if event.kind == "state":
                self._store.save_record(record.id, self._record_payload(record))
        except (ReproError, OSError) as exc:
            _log.error(
                "job persistence failed; continuing in memory",
                extra={"fields": {
                    "job": record.id, "seq": event.seq,
                    "error": f"{type(exc).__name__}: {exc}",
                }},
            )

    def _recover(self) -> None:
        """Reload persisted jobs; requeue the ones the crash interrupted.

        Runs once, from the constructor, before any new submission can
        race it. Terminal jobs re-enter the table read-only (their
        results keep answering ``GET /v3/jobs/{id}``); queued/running
        jobs requeue with a ``recovered`` reason — their attempt counter
        survives, so a job that keeps crashing the server still exhausts
        its retry budget instead of looping forever. Unreadable records
        are logged and skipped, never fatal: recovery must not be able
        to prevent the server from starting.

        In fleet mode the pass *claims* instead of assuming: each
        unfinished job's lease is contested through the coordinator. A
        won claim requeues here (through a stale lease it carries the
        takeover reason); a lost one means a live peer is running the
        job, so it is restored as a passive mirror only — the scan
        thread keeps it fresh and takes over if that peer dies.
        """
        requeued = 0
        restored = 0
        for stored in self._store.load():
            try:
                record = self._restore_record(stored)
            except ReproError as exc:
                _log.warning(
                    "skipping unrecoverable persisted job",
                    extra={"fields": {
                        "job": stored.job_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    }},
                )
                continue
            self._jobs[record.id] = record
            restored += 1
            if record.state in TERMINAL_STATES:
                continue
            reason = "recovered after restart"
            if self._fleet is not None:
                claim = self._fleet.try_claim(record.id)
                if not claim.won:
                    continue  # a live peer owns it; mirror passively
                if claim.reclaimed_from:
                    reason = f"reclaimed from dead owner {claim.reclaimed_from}"
            with record.cond:
                record.requeue(reason)
            self._pool.submit(self._run, record)
            requeued += 1
            obs_metrics.get_registry().counter(
                obs_names.JOBS_RECOVERED,
                "Unfinished jobs re-enqueued by the startup recovery pass.",
            ).inc()
        self.recovered_jobs = requeued
        if restored:
            _log.info(
                "recovery pass complete",
                extra={"fields": {
                    "restored": restored, "requeued": requeued,
                }},
            )

    def _restore_record(self, stored) -> JobRecord:
        """One persisted job back into a live record (sink reattached)."""
        payload = stored.record
        try:
            job = payload["job"]
            request = request_from_dict(payload["request"])
            state = resolve_state(job["state"])
            started = job.get("started_at")
            finished = job.get("finished_at")
            result_payload = job.get("result")
            result: (
                OptimizeResponse | BatchResponse | AnalyzeResponse
                | CostrategyResponse | None
            ) = None
            if result_payload is not None:
                kind = job.get("kind")
                if kind == "batch":
                    result = BatchResponse.from_dict(result_payload)
                elif kind == "analyze":
                    result = AnalyzeResponse.from_dict(result_payload)
                elif kind == "costrategy":
                    result = CostrategyResponse.from_dict(result_payload)
                else:
                    result = OptimizeResponse.from_dict(result_payload)
            events = [
                ProgressEvent.from_dict(event) for event in stored.events
            ]
            return JobRecord.restore(
                stored.job_id,
                request,
                str(payload.get("content_key", "")) or job_content_key(request),
                state=state,
                created_at=float(job["created_at"]),
                started_at=None if started is None else float(started),
                finished_at=None if finished is None else float(finished),
                error=str(job.get("error", "")),
                result=result,
                events=events,
                attempts=int(payload.get("attempts", 0)),
                sink=self._sink,
            )
        except ReproError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed persisted job record: {exc}"
            ) from exc

    # -- fleet coordination (called from the FleetCoordinator thread) --------

    def _fleet_sync_from_disk(self, job_id: str, record_payload: dict) -> JobRecord | None:
        """Mirror a peer-owned job's disk state into the local table.

        Adopts unknown jobs (so any fleet member answers ``GET`` and
        dedupes against work running anywhere) and refreshes known
        passive mirrors in place — replacing the event list wholesale
        with the disk log, which shares the gapless seq prefix local
        streams have already delivered, so cursors stay valid. Records
        this server owns, and mirrors that already reached a local
        terminal state, are never touched.
        """
        if self._fleet is not None and self._fleet.owns(job_id):
            return None
        stored = StoredJob(
            job_id=job_id,
            record=record_payload,
            events=self._store.read_events(job_id),
        )
        try:
            fresh = self._restore_record(stored)
        except ReproError:
            return None
        with self._lock:
            if self._closed:
                return None
            record = self._jobs.get(job_id)
            if record is None:
                self._jobs[job_id] = fresh
                return fresh
        with record.cond:
            if record.state in TERMINAL_STATES:
                return record
            record.state = fresh.state
            record.started_at = fresh.started_at
            record.finished_at = fresh.finished_at
            record.error = fresh.error
            record.result = fresh.result
            record.attempts = fresh.attempts
            if fresh.next_seq > record.next_seq:
                record.events = fresh.events
                record.next_seq = fresh.next_seq
            record.cond.notify_all()
        return record

    def _fleet_run_claimed(
        self, job_id: str, record_payload: dict, reason: str
    ) -> None:
        """Run a job whose lease this server just won (takeover path).

        Syncs the record to disk truth first — the disk log is what this
        server's sink will append after — then requeues with ``reason``
        (now persisted, since the lease is ours) and schedules it.
        """
        assert self._fleet is not None
        stored = StoredJob(
            job_id=job_id,
            record=record_payload,
            events=self._store.read_events(job_id),
        )
        with self._lock:
            if self._closed:
                self._fleet.release(job_id)
                return
            record = self._jobs.get(job_id)
            if record is None:
                try:
                    record = self._restore_record(stored)
                except ReproError as exc:
                    _log.warning(
                        "cannot adopt claimed job; releasing lease",
                        extra={"fields": {
                            "job": job_id,
                            "error": f"{type(exc).__name__}: {exc}",
                        }},
                    )
                    self._fleet.release(job_id)
                    return
                self._jobs[job_id] = record
        with record.cond:
            if record.state in TERMINAL_STATES:
                self._fleet.release(job_id)
                return
            # Align the in-memory record with the disk log before the
            # first owned append, and reset the cancel flag: a previous
            # local runner that lost this lease mid-solve still holds
            # the old (set) Event and will stop at its next checkpoint.
            events = [ProgressEvent.from_dict(e) for e in stored.events]
            if events and events[-1].seq + 1 > record.next_seq:
                record.events = events[-EVENT_LOG_LIMIT:]
                record.next_seq = events[-1].seq + 1
            record.cancel_requested = threading.Event()
            record.requeue(reason)
        with self._lock:
            if self._closed:
                return
            try:
                self._pool.submit(self._run, record)
            except RuntimeError:
                pass  # teardown; the lease releases in close()

    def _fleet_lease_lost(self, record: JobRecord) -> None:
        """React to losing a lease (renewal failed): stop, don't persist.

        The job is not cancelled globally — a peer has (or will) take it
        over. Locally: a running solve gets its cancel flag raised so it
        stops at the next checkpoint, and the record returns to
        ``queued`` as a passive mirror (the sink is already gated off,
        so nothing we do from here reaches the shared log).
        """
        with record.cond:
            if record.state in TERMINAL_STATES:
                return
            if record.state is JobState.RUNNING:
                record.cancel_requested.set()
            record.requeue(
                "lease lost (renewal failed); a peer server owns this job"
            )
        _log.warning(
            "stopped local run after lease loss",
            extra={"fields": {"job": record.id}},
        )

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: (
            OptimizeRequest | BatchRequest | AnalyzeRequest | CostrategyRequest
        ),
        *,
        dedupe: bool = True,
    ) -> JobHandle:
        """Queue one request; return its handle immediately.

        Job ids are content-derived, and by default submission is
        *idempotent over live and successful work*: re-submitting a
        payload whose job is queued, running, or done returns the
        existing handle (clients retrying over a flaky link never fork
        duplicate solves). A payload whose previous job failed or was
        cancelled gets a fresh ``-r<N>`` id — reruns after failure are
        the one case where "same content" must mean "new attempt".
        ``dedupe=False`` forces a fresh job unconditionally.

        In fleet mode the same semantics extend to disk state the local
        table has not mirrored yet: a won lease claim is followed by a
        store read, and an existing record is adopted (terminal ``done``
        dedupes, failed/cancelled reruns under the next id, a live one
        is taken over and requeued) rather than shadowed by a fresh
        seq-0 record that would corrupt its event log.
        """
        content_key = job_content_key(request)
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "job manager is shut down; no new submissions"
                )
            if dedupe:
                for record in reversed(self._jobs.values()):
                    if record.content_key != content_key:
                        continue
                    with record.cond:
                        reusable = record.state not in (
                            JobState.FAILED, JobState.CANCELLED
                        )
                    if reusable:
                        return JobHandle(record)
                    break  # most recent attempt failed/cancelled: rerun
            self._evict_terminal()
            # Fleet mode claims the lease *before* creating the record:
            # the record's first emitted event (queued, seq 0) must only
            # persist on the server that owns the log. Identical
            # payloads racing on two servers derive the same job id, so
            # the O_EXCL claim picks the single runner; the loser tracks
            # the job passively and the scan thread mirrors the winner's
            # progress in.
            rerun = 0
            job_id = derive_job_id(content_key, rerun)
            claimed = None
            record: JobRecord | None = None
            reason = ""
            while True:
                if job_id in self._jobs:
                    rerun += 1
                    job_id = derive_job_id(content_key, rerun)
                    continue
                if self._fleet is None:
                    break
                claimed = self._fleet.try_claim(job_id)
                if not claimed.won:
                    break
                # A won claim is not yet proof the id is fresh: the id's
                # record may exist on disk without a local mirror yet (a
                # peer's terminal job, or a drain-released queued one,
                # inside the scan interval — neither carries a lease). A
                # fresh record's seq-0 queued event would then append
                # after the existing log's tail and break the gapless
                # prefix, so disk truth wins over a new record.
                stored_payload = self._store.read_record(job_id)
                if stored_payload is None:
                    break  # genuinely fresh id, lease held: create below
                stored = StoredJob(
                    job_id=job_id,
                    record=stored_payload,
                    events=self._store.read_events(job_id),
                )
                try:
                    mirror = self._restore_record(stored)
                except ReproError:
                    # Unreadable record: leave it to the scan's orphan
                    # handling and take the next rerun id.
                    self._fleet.release(job_id)
                    rerun += 1
                    job_id = derive_job_id(content_key, rerun)
                    continue
                state = mirror.state
                self._jobs[job_id] = mirror
                if state in TERMINAL_STATES:
                    self._fleet.release(job_id)
                    if dedupe and state is JobState.DONE:
                        return JobHandle(mirror)  # fleet-wide dedupe hit
                    # Failed/cancelled (or dedupe off): rerun, fresh id.
                    rerun += 1
                    job_id = derive_job_id(content_key, rerun)
                    continue
                if not dedupe:
                    # A fresh job was demanded; the live record goes back
                    # to the fleet (a peer's scan claims and runs it).
                    self._fleet.release(job_id)
                    rerun += 1
                    job_id = derive_job_id(content_key, rerun)
                    continue
                # Live on disk (queued by a drained peer, or under the
                # stale lease the claim just took over) and now leased to
                # us: this submission *is* the takeover — requeue the
                # adopted record instead of minting a duplicate.
                record = mirror
                reason = (
                    f"reclaimed from dead owner {claimed.reclaimed_from}"
                    if claimed.reclaimed_from
                    else "claimed on submit"
                )
                break
            if record is not None:
                with record.cond:
                    record.requeue(reason)
            else:
                # Emits the queued event; with a store the sink persists
                # the record before submit returns — a crash after the
                # 202 can never lose an acknowledged job.
                record = JobRecord(job_id, request, content_key, sink=self._sink)
                self._jobs[job_id] = record
                if claimed is not None and not claimed.won:
                    _log.info(
                        "job claimed by a peer server; tracking passively",
                        extra={"fields": {"job": job_id, "kind": record.kind}},
                    )
                    return JobHandle(record)
            # Scheduling happens under the manager lock: shutdown() flips
            # _closed under the same lock before it stops the pool, so a
            # submission that passed the _closed check above cannot race
            # the pool into RuntimeError. The guard below is a belt for
            # exotic interpreter shutdown paths only.
            try:
                self._pool.submit(self._run, record)
            except RuntimeError as exc:
                with record.cond:
                    record.transition(
                        JobState.CANCELLED, error=f"worker pool unavailable: {exc}"
                    )
                raise ConfigurationError(
                    "job manager is shut down; no new submissions"
                ) from exc
        obs_metrics.get_registry().counter(
            obs_names.JOBS_SUBMITTED,
            "Jobs accepted into the queue (dedupe hits excluded).",
            labels=("kind",),
        ).labels(kind=record.kind).inc()
        _log.info(
            "job queued",
            extra={"fields": {"job": record.id, "kind": record.kind}},
        )
        return JobHandle(record)

    def _evict_terminal(self) -> None:
        """Keep the job table bounded. Caller holds the manager lock.

        Only terminal jobs *past the grace window* are evictable — a
        just-finished job's submitter may still be about to fetch its
        result. A table full of live or freshly finished jobs refuses
        the submission instead (backpressure).
        """
        while len(self._jobs) >= self._max_jobs:
            victim = None
            now = time.time()
            for job_id, record in self._jobs.items():
                with record.cond:
                    evictable = (
                        record.state in TERMINAL_STATES
                        and record.finished_at is not None
                        and now - record.finished_at >= self._evict_grace_s
                    )
                if evictable:
                    victim = job_id
                    break
            if victim is None:
                raise ConfigurationError(
                    f"job table is full ({self._max_jobs} live or "
                    "just-finished jobs); wait, cancel some, or raise "
                    "--max-jobs"
                )
            del self._jobs[victim]
            if self._store is not None:
                # Durable state follows the table: an evicted job must
                # not resurrect on the next restart (and the store must
                # not grow without bound).
                self._store.delete(victim)

    # -- execution -----------------------------------------------------------

    def _run(self, record: JobRecord) -> None:
        """Pool-thread entry: drive one job through its lifecycle.

        The attempt stamps ``record.run_generation`` at its RUNNING
        transition, and every outcome below requires that stamp to still
        be current. ``state is RUNNING`` alone cannot tell *whose*
        running it is: after a fleet lease loss the record requeues, and
        if this same server reclaims the job (its own expired lease
        retaken by its scan) a new attempt goes RUNNING while the old
        solver thread is still winding down — without the generation
        check the old thread's outcome would terminate the new attempt
        and persist a wrong terminal state under the freshly held lease.
        """
        if self._fleet is not None and not self._fleet.owns(record.id):
            return  # lease lost while queued; a peer owns the job now
        with record.cond:
            if record.state is not JobState.QUEUED:
                return  # cancelled while queued
            record.run_generation += 1
            generation = record.run_generation
            record.transition(JobState.RUNNING)
            queued_s = (record.started_at or 0.0) - record.created_at
        # Latency observations happen after the condition lock is released
        # (see register_gauges for the ordering this preserves).
        registry = obs_metrics.get_registry()
        registry.histogram(
            obs_names.JOB_QUEUE_SECONDS, "Submit-to-running latency."
        ).observe(max(queued_s, 0.0))
        _log.debug(
            "job running",
            extra={"fields": {
                "job": record.id, "kind": record.kind,
                "queue_s": round(max(queued_s, 0.0), 6),
            }},
        )

        def on_event(payload: dict) -> None:
            data = dict(payload)
            kind = data.pop("type", "solve")
            with record.cond:
                record.emit(kind, data)

        try:
            with obs_trace.get_tracer().span(
                "job", attrs={"job": record.id, "kind": record.kind}
            ):
                faults.fire("manager.run")
                response = self.service.submit(
                    record.request,
                    should_stop=record.cancel_requested.is_set,
                    on_event=on_event,
                )
        except JobCancelled as exc:
            with record.cond:
                # Only this attempt's still-RUNNING record cancels here:
                # a fleet lease loss requeues the record mid-solve
                # (queued → cancelled is legal, and transitioning would
                # wrongly terminate a job a peer — or a newer local
                # attempt — is about to run).
                if (
                    record.state is JobState.RUNNING
                    and record.run_generation == generation
                ):
                    record.transition(JobState.CANCELLED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — job containment contract
            if self._maybe_retry(record, exc, generation):
                return  # requeued; terminal accounting happens on the last run
            with record.cond:
                if (
                    record.state is JobState.RUNNING
                    and record.run_generation == generation
                ):
                    record.transition(
                        JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
                    )
        else:
            with record.cond:
                # A record no longer RUNNING — or running under a newer
                # generation — was requeued under us (fleet lease loss):
                # the outcome is discarded — the lease owner recomputes
                # it, cheaply, from the shared cache.
                if (
                    record.state is JobState.RUNNING
                    and record.run_generation == generation
                ):
                    record.result = response
                    record.transition(JobState.DONE)
        with record.cond:
            state = record.state
            error = record.error
            # Terminal accounting (and the lease release) belongs to the
            # attempt that set the terminal state; a stale thread racing
            # a newer attempt must not release its lease or double-count.
            finished_here = (
                state in TERMINAL_STATES
                and record.run_generation == generation
            )
            run_s = (
                (record.finished_at or 0.0) - (record.started_at or 0.0)
                if finished_here else 0.0
            )
        if finished_here and self._fleet is not None:
            # The terminal state event is already persisted (the sink
            # runs inside the transition), so the lease has done its job.
            self._fleet.release(record.id)
        if finished_here:
            registry.histogram(
                obs_names.JOB_RUN_SECONDS, "Running-to-terminal latency."
            ).observe(max(run_s, 0.0))
            registry.counter(
                obs_names.JOBS_COMPLETED,
                "Jobs reaching a terminal state.",
                labels=("state",),
            ).labels(state=state.value).inc()
            fields = {
                "job": record.id, "kind": record.kind,
                "state": state.value, "run_s": round(max(run_s, 0.0), 6),
            }
            if error:
                fields["error"] = error
            level = _log.info if state is JobState.DONE else _log.warning
            level("job finished", extra={"fields": fields})

    def _maybe_retry(
        self, record: JobRecord, exc: BaseException, generation: int
    ) -> bool:
        """Requeue a transiently failed job with bounded backoff.

        True means the failure was absorbed: the record is back in
        ``queued`` (attempt counter bumped, retry state event emitted and
        persisted) and a timer will resubmit it after
        ``retry_backoff_s * 2**(attempt-1)`` seconds, capped at
        :data:`MAX_RETRY_BACKOFF_S`. False means the caller should fail
        the job for real: permanent errors, exhausted budget, or a
        cancel/shutdown race. ``generation`` is the calling attempt's
        run stamp — a stale thread (the record was requeued and re-run
        under it) absorbs nothing and requeues nothing.
        """
        if not _is_transient(exc):
            return False
        with record.cond:
            if (
                record.state is not JobState.RUNNING
                or record.run_generation != generation
                or record.cancel_requested.is_set()
                or record.attempts >= self._max_retries
            ):
                return False
            record.attempts += 1
            attempt = record.attempts
            record.requeue(
                f"retry {attempt}/{self._max_retries} after transient "
                f"failure: {type(exc).__name__}: {exc}"
            )
        obs_metrics.get_registry().counter(
            obs_names.JOB_RETRIES,
            "Transient-failure retries (job requeues and chain requeues).",
        ).inc()
        delay = min(
            self._retry_backoff_s * 2 ** (attempt - 1), MAX_RETRY_BACKOFF_S
        )
        _log.warning(
            "job retrying after transient failure",
            extra={"fields": {
                "job": record.id, "attempt": attempt,
                "max_retries": self._max_retries,
                "backoff_s": round(delay, 3),
                "error": f"{type(exc).__name__}: {exc}",
            }},
        )
        # A timer, not a sleep: sleeping here would pin a pool slot for
        # the whole backoff window.
        timer = threading.Timer(delay, self._resubmit, args=(record,))
        timer.daemon = True
        with self._lock:
            if self._closed:
                # Shutdown raced the retry; leave the job queued — with a
                # store the next boot's recovery pass picks it up.
                return True
            self._retry_timers.add(timer)
        timer.start()
        return True

    def _resubmit(self, record: JobRecord) -> None:
        """Timer target: put a backed-off job back on the pool."""
        with self._lock:
            self._retry_timers = {
                timer for timer in self._retry_timers if timer.is_alive()
            }
            if self._closed:
                return
            try:
                self._pool.submit(self._run, record)
            except RuntimeError:
                pass  # interpreter/pool teardown; recovery owns the job now

    # -- lookup --------------------------------------------------------------

    def get(self, job_id: str) -> JobHandle | None:
        """The handle for ``job_id``, or ``None``."""
        with self._lock:
            record = self._jobs.get(job_id)
        return None if record is None else JobHandle(record)

    def job(self, job_id: str) -> JobHandle:
        """The handle for ``job_id``; unknown ids raise."""
        handle = self.get(job_id)
        if handle is None:
            raise ConfigurationError(f"unknown job id {job_id!r}")
        return handle

    def handles(self) -> list[JobHandle]:
        """Every tracked job, oldest first."""
        with self._lock:
            return [JobHandle(record) for record in self._jobs.values()]

    def cancel(self, job_id: str) -> JobHandle:
        """Request cancellation of ``job_id``; returns its handle."""
        handle = self.job(job_id)
        handle.cancel()
        return handle

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop accepting jobs; optionally cancel what has not finished.

        ``cancel_pending=False`` is the durable-restart mode: queued work
        items are withdrawn from the pool *without* transitioning their
        jobs (running jobs still drain when ``wait``), so with a store
        they stay persisted as ``queued`` and the next boot's recovery
        pass resumes them — a graceful restart must not turn the backlog
        into a pile of cancellations.

        In fleet mode this is the graceful drain: after any cancellation
        pass, still-queued claimed jobs have their leases released (a
        peer's next scan claims and runs them — their records are on
        disk as ``queued``, exactly the takeover shape), running jobs
        finish while ``wait`` holds their leases, and the coordinator
        shuts down last so heartbeats cover the whole drain.
        """
        with self._lock:
            self._closed = True
            records = list(self._jobs.values())
            timers = list(self._retry_timers)
            self._retry_timers.clear()
        for timer in timers:
            timer.cancel()
        _log.info(
            "manager shutdown",
            extra={"fields": {
                "jobs": len(records), "cancel_pending": cancel_pending,
            }},
        )
        if cancel_pending:
            for record in records:
                JobHandle(record).cancel()
        if self._fleet is not None:
            self._fleet.drain()
        self._pool.shutdown(wait=wait, cancel_futures=not cancel_pending)
        if self._fleet is not None:
            self._fleet.close()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

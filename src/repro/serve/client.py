"""Thin stdlib client for the :mod:`repro.serve` HTTP job API.

``ServeClient`` speaks the same value types as the in-process API — it
takes :class:`OptimizeRequest` / :class:`BatchRequest` values and hands
back :class:`~repro.serve.jobs.JobInfo` snapshots and typed responses —
so a caller can swap ``service.submit(request)`` for
``client.submit_and_wait(request)`` and change nothing else. Built on
``urllib.request`` only; errors the server reports as JSON surface as
:class:`ReproError` with the server's own message.

Typical session::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8350")
    info = client.submit(request)
    progress = [
        (event.kind, event.data)
        for event in client.events(info.id, follow=True)
    ]
    response = client.result(info.id)
"""

from __future__ import annotations

import json
import random
import time
from collections.abc import Iterator, Mapping
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.api.requests import (
    BatchRequest,
    BatchResponse,
    OptimizeRequest,
    OptimizeResponse,
    request_to_dict,
)
from repro.serve.events import ProgressEvent
from repro.serve.jobs import JobInfo, derive_job_id, job_content_key
from repro.utils.errors import ConfigurationError, ReproError


class ServeClientError(ReproError, RuntimeError):
    """The server (or the network) rejected a client call.

    Attributes:
        status: HTTP status code, or 0 for transport-level failures.
        transient: True for connection-level failures (refused, reset,
            broken pipe) that a retry against a restarting server can
            reasonably recover from. Protocol and HTTP-status errors are
            never transient — the server answered, and will answer the
            same way again.
    """

    def __init__(
        self, message: str, status: int = 0, transient: bool = False
    ):
        self.status = status
        self.transient = transient
        super().__init__(message)


class ServeStreamStalled(ServeClientError):
    """An event stream went quiet past the socket timeout.

    Not a job failure — a long solve simply emits nothing between events.
    :meth:`ServeClient.follow_to_completion` resumes the stream on this;
    other :class:`ServeClientError`\\ s (protocol faults, server errors)
    propagate.
    """


class ServeClient:
    """One serve endpoint, addressed by base URL.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8350"`` (trailing slash ok).
        timeout: Per-connection socket timeout, seconds. Event streams
            use it as the *between-events* bound.
        retries: How many times an idempotent call is retried after a
            transient connection failure (refused/reset), with jittered
            exponential backoff — enough to ride through a server
            restart. Idempotent means GETs *and* job submission:
            ``POST /v3/jobs`` dedupes on the content-derived job id, so
            repeating a submission whose fate is unknown lands on the
            same job instead of forking a duplicate (and :meth:`submit`
            asserts the returned id matches the locally derived one).
            DELETEs are never retried at the transport level: repeating
            a cancellation whose fate is unknown could cancel a rerun.
        retry_backoff_s: Base backoff before the first retry; doubles
            each attempt (jittered to half–full of the nominal delay).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 3,
        retry_backoff_s: float = 0.2,
    ):
        if "://" not in base_url:
            base_url = "http://" + base_url
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

    # -- transport -----------------------------------------------------------

    def _open(self, method: str, path: str, payload: Mapping | None = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            return urlopen(request, timeout=self.timeout)  # noqa: S310 — caller-supplied http(s) endpoint
        except HTTPError as exc:
            detail = f"{method} {path} -> HTTP {exc.code}"
            try:
                error = json.loads(exc.read())
                message = error.get("error", "")
                located = error.get("path")
                if message:
                    detail = (
                        f"{detail}: {message}"
                        + (f" (at {located!r})" if located else "")
                    )
            except (json.JSONDecodeError, OSError, AttributeError):
                pass
            raise ServeClientError(detail, status=exc.code) from exc
        except URLError as exc:
            reason = getattr(exc, "reason", None)
            raise ServeClientError(
                f"cannot reach {self.base_url}: {exc.reason}",
                transient=isinstance(reason, ConnectionError),
            ) from exc

    def _backoff_sleep(self, attempt: int) -> None:
        """Jittered exponential backoff before retry ``attempt`` (0-based).

        Jitter spans half to full of the nominal delay so a crowd of
        clients reconnecting to a restarted server does not arrive in
        lockstep.
        """
        nominal = self.retry_backoff_s * (2 ** attempt)
        time.sleep(min(nominal, 10.0) * random.uniform(0.5, 1.0))

    def _open_get(self, path: str):
        """``_open("GET", ...)``, retried across transient failures.

        Safe precisely because GETs are idempotent: repeating one cannot
        duplicate a submission or a cancellation.
        """
        for attempt in range(self.retries + 1):
            try:
                return self._open("GET", path)
            except ServeClientError as exc:
                if not exc.transient or attempt >= self.retries:
                    raise
            self._backoff_sleep(attempt)
        raise AssertionError("unreachable")

    def _call(self, method: str, path: str, payload: Mapping | None = None) -> dict:
        attempts = self.retries + 1 if method == "GET" else 1
        for attempt in range(attempts):
            try:
                return self._call_once(method, path, payload)
            except ServeClientError as exc:
                if not exc.transient or attempt + 1 >= attempts:
                    raise
            self._backoff_sleep(attempt)
        raise AssertionError("unreachable")

    def _call_once(
        self, method: str, path: str, payload: Mapping | None = None
    ) -> dict:
        with self._open(method, path, payload) as response:
            try:
                parsed = json.load(response)
            except json.JSONDecodeError as exc:
                raise ServeClientError(
                    f"{method} {path}: server sent invalid JSON: {exc}"
                ) from exc
            except OSError as exc:
                # The connection dropped mid-body (server restart, reset).
                raise ServeClientError(
                    f"{method} {path}: connection lost mid-response: {exc}",
                    transient=isinstance(exc, ConnectionError),
                ) from exc
        if not isinstance(parsed, dict):
            raise ServeClientError(
                f"{method} {path}: expected a JSON object response"
            )
        return parsed

    # -- the job API ---------------------------------------------------------

    def healthy(self) -> bool:
        """True when the endpoint answers ``/healthz``."""
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except ServeClientError:
            return False

    def submit(
        self, request: OptimizeRequest | BatchRequest | Mapping
    ) -> JobInfo:
        """Submit a request (value or pre-encoded payload); job snapshot back.

        Retried across transient connection failures like a GET, which
        is safe *because job ids are content-derived*: the server
        dedupes a repeated payload onto the live job the first (fate
        unknown) attempt may have created, so a retry can observe a
        duplicate but never fork one. As a belt for that reasoning,
        when the expected id is locally derivable the returned id is
        asserted to match — a mismatch means the server is not the
        deduping server this retry policy assumes, and surfaces as a
        non-transient error rather than silently diverging work.
        (Batch requests with a ``cache_dir`` skip the assertion: the
        server rewrites the path under its ``--cache-root`` sandbox,
        which legitimately changes the content key.)
        """
        payload = (
            dict(request) if isinstance(request, Mapping)
            else request_to_dict(request)
        )
        expected = None
        if not isinstance(request, Mapping) and not (
            isinstance(request, BatchRequest) and request.cache_dir
        ):
            expected = derive_job_id(job_content_key(request))
        for attempt in range(self.retries + 1):
            try:
                info = JobInfo.from_dict(
                    self._call_once("POST", "/v3/jobs", payload)
                )
                break
            except ServeClientError as exc:
                if not exc.transient or attempt >= self.retries:
                    raise
            self._backoff_sleep(attempt)
        else:  # pragma: no cover — the loop always breaks or raises
            raise AssertionError("unreachable")
        if expected is not None and not (
            info.id == expected or info.id.startswith(expected + "-r")
        ):
            raise ServeClientError(
                f"server returned job id {info.id!r} for a payload that "
                f"derives {expected!r}; refusing to retry against a "
                "server that does not dedupe submissions by content"
            )
        return info

    def job(self, job_id: str) -> JobInfo:
        """The current envelope for one job (result included when done)."""
        return JobInfo.from_dict(self._call("GET", f"/v3/jobs/{job_id}"))

    def jobs(self) -> list[JobInfo]:
        """Summaries of every job the server tracks (no result payloads)."""
        listing = self._call("GET", "/v3/jobs")
        version = listing.get("schema_version")
        return [
            JobInfo.from_dict({"schema_version": version, "job": job})
            for job in listing.get("jobs", ())
        ]

    def cancel(self, job_id: str) -> JobInfo:
        """Request cooperative cancellation; the post-request snapshot back."""
        return JobInfo.from_dict(self._call("DELETE", f"/v3/jobs/{job_id}"))

    def events(
        self, job_id: str, after: int = 0, follow: bool = False
    ) -> Iterator[ProgressEvent]:
        """The job's event log; ``follow=True`` streams until terminal."""
        suffix = f"/v3/jobs/{job_id}/events?after={int(after)}"
        if follow:
            suffix += "&follow=1"
        with self._open_get(suffix) as response:
            while True:
                try:
                    line = response.readline()
                except OSError as exc:
                    # Includes socket TimeoutError: the job went longer than
                    # self.timeout between events. Surface it as the typed
                    # stall error (resumable), never a raw traceback — the
                    # job itself keeps running server-side.
                    raise ServeStreamStalled(
                        f"event stream from {self.base_url} stalled "
                        f"(no data within {self.timeout:g}s) or failed: {exc}"
                    ) from exc
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield ProgressEvent.from_dict(json.loads(line))
                except (json.JSONDecodeError, ConfigurationError) as exc:
                    raise ServeClientError(
                        f"malformed event line from {self.base_url}: {exc}"
                    ) from exc

    def follow_to_completion(
        self,
        job_id: str,
        after: int = 0,
        on_event=None,
    ) -> None:
        """Stream a job's events until it is terminal, surviving stalls
        and server restarts.

        The one place the quiet-long-solve policy lives: when the follow
        stream outlives the between-events socket timeout
        (:class:`ServeStreamStalled`), the job's state is checked and the
        stream resumes from the last seen sequence number. With a durable
        server (``repro serve --state-dir``) the same resume-from-cursor
        logic rides through a crash and restart: transient connection
        failures back off and reconnect (each already GET-retried at the
        transport layer) until the retry budget is spent. Protocol
        faults propagate. ``on_event`` receives each
        :class:`ProgressEvent` exactly once — the durable event log
        replays with the same sequence numbers across restarts, so the
        cursor never re-delivers or skips.
        """
        cursor = max(0, after)
        fruitless = 0
        reconnects = 0
        while True:
            progressed = False
            try:
                for event in self.events(job_id, after=cursor, follow=True):
                    cursor = event.seq + 1
                    progressed = True
                    if on_event is not None:
                        on_event(event)
                # Clean close normally means the terminal event was sent —
                # but a dying server (SIGTERM, proxy FIN) can close early,
                # so verify rather than trust the EOF.
                if self.job(job_id).done:
                    return
            except ServeStreamStalled:
                if self.job(job_id).done:
                    return
                # Fall through to the fruitless counter: the server
                # heartbeats quiet follow streams, so a genuine client
                # timeout means the stream (not the solve) is wedged.
            except ServeClientError as exc:
                if not exc.transient:
                    raise
                # The connection died and transport-level GET retries are
                # exhausted — the server is down or mid-restart. Grant a
                # second-tier budget of reconnect rounds (reset by any
                # progress) before giving up for good.
                reconnects += 1
                if reconnects > self.retries:
                    raise ServeClientError(
                        f"lost the server while following job {job_id} "
                        f"and could not reconnect after {reconnects} "
                        f"rounds: {exc}",
                        transient=True,
                    ) from exc
                self._backoff_sleep(reconnects - 1)
                continue
            if progressed:
                reconnects = 0
            fruitless = 0 if progressed else fruitless + 1
            if fruitless >= 3:
                raise ServeClientError(
                    f"event stream for job {job_id} ended {fruitless} times "
                    "in a row without progress while the job is still "
                    "running; the server looks unhealthy"
                )

    def wait(
        self, job_id: str, timeout: float | None = None, poll_s: float = 0.25
    ) -> JobInfo:
        """Poll until the job is terminal; its final envelope back."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            info = self.job(job_id)
            if info.done:
                return info
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {info.state.value} after {timeout:g}s"
                )
            time.sleep(poll_s)

    def result(
        self, job_id: str, timeout: float | None = None
    ) -> OptimizeResponse | BatchResponse:
        """Await and decode the job's typed response (raising its failure)."""
        return self.wait(job_id, timeout=timeout).response()

    def submit_and_wait(
        self,
        request: OptimizeRequest | BatchRequest | Mapping,
        timeout: float | None = None,
        on_event=None,
    ) -> OptimizeResponse | BatchResponse:
        """The blocking convenience: submit, stream to completion, decode.

        Follows the event stream rather than polling, so completion is
        observed the moment the terminal event lands; ``on_event`` taps
        the stream (the ``repro submit --events`` hook).
        """
        info = self.submit(request)
        if not info.done:
            # From 0, not info.num_events: submission may have deduped
            # onto an already-running job, and on_event should replay its
            # whole history (plan, earlier cells), not just the tail.
            self.follow_to_completion(info.id, on_event=on_event)
        return self.result(info.id, timeout=timeout)

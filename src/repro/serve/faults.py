"""Deterministic fault injection for the durability test matrix.

Crash-safety claims are only as good as the crashes they were tested
against. This module lets tests (and the ``recovery-smoke`` CI job) drive
the exact failure the durable store must survive — process death *between*
two persist steps, a worker raising mid-solve, an fsync that takes forever
— without sleeps, signals-from-outside, or races.

Instrumented code calls :func:`fire` at named *points*; the
``REPRO_FAULTS`` environment variable (or :func:`configure` in-process)
arms directives against those points:

``crash:<point>[:N]``
    Hard process death (``os._exit``, exit code :data:`CRASH_EXIT_CODE` —
    nothing flushes, no handlers run: the kill -9 model) at the Nth firing
    of ``point`` (default: the first).
``raise:<point>[:N]``
    Raise :class:`FaultInjected` (a
    :class:`~repro.utils.errors.TransientError`) at the first N firings
    (default 1), then behave normally — the shape retry layers must absorb.
``delay:<point>=<seconds>``
    Sleep that long at every firing (slow-IO injection).

Directives are comma-separated: ``REPRO_FAULTS="delay:store.fsync=0.05,
crash:store.record.after:2"``. Spawn-pool workers inherit the variable
through the environment, so worker-side points arm in child processes too
(counts are per process). Counts are thread-safe within a process.

Instrumented points (grep for ``faults.fire``):

========================  ====================================================
``store.record.before``   before a job record.json persist
``store.record.after``    after the record persist completed (atomic replace)
``store.events.before``   before an event-log append
``store.events.after``    after the append (and any fsync) completed
``store.fsync``           immediately before each event-log/record fsync
``manager.run``           in the job worker, before executing the request
``worker.solve``          in :func:`~repro.explore.executor.solve_point`,
                          before each solve attempt (fires in pool workers)
``fleet.claim``           after a lease file is created but before the claim
                          returns (``crash`` here is the mid-claim death a
                          peer's scan must clean up)
``fleet.renew``           before each lease-renewal write (``delay`` here is
                          the heartbeat stall that forces a peer takeover)
========================  ====================================================

The no-fault fast path is one module-global ``is None`` check, so
instrumentation costs nothing when ``REPRO_FAULTS`` is unset (the BENCH
floors run with it unset).
"""

from __future__ import annotations

import os
import threading
import time

from repro.utils.errors import ConfigurationError, TransientError

#: The environment variable holding the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: ``os._exit`` code for ``crash:`` directives — distinctive on purpose,
#: so a test can assert the *injected* crash happened (and not some
#: incidental failure with the same symptom).
CRASH_EXIT_CODE = 66


class FaultInjected(TransientError):
    """The error a ``raise:`` directive injects.

    Transient by construction: injected worker failures exist to exercise
    the retry/requeue machinery, which keys on
    :class:`~repro.utils.errors.TransientError`.
    """


class _Directive:
    """One armed fault. ``fire`` returns True when the point should crash."""

    __slots__ = ("action", "point", "limit", "seconds", "count")

    def __init__(self, action: str, point: str, limit: int, seconds: float):
        self.action = action
        self.point = point
        self.limit = limit  # crash: the firing to crash at; raise: how many
        self.seconds = seconds
        self.count = 0


class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec, with per-point firing counters."""

    def __init__(self, spec: str):
        self.spec = spec
        self._lock = threading.Lock()
        self._directives: dict[str, list[_Directive]] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            directive = self._parse(part)
            self._directives.setdefault(directive.point, []).append(directive)

    @staticmethod
    def _parse(part: str) -> _Directive:
        action, _, rest = part.partition(":")
        if action == "delay":
            point, _, value = rest.partition("=")
            try:
                seconds = float(value)
            except ValueError:
                seconds = -1.0
            if not point or seconds < 0:
                raise ConfigurationError(
                    f"malformed fault directive {part!r}; expected "
                    "delay:<point>=<seconds>"
                )
            return _Directive("delay", point, 0, seconds)
        if action in ("crash", "raise"):
            point, _, count = rest.rpartition(":")
            if point and count.isdigit():
                limit = int(count)
            else:
                point, limit = rest, 1
            if not point or limit < 1:
                raise ConfigurationError(
                    f"malformed fault directive {part!r}; expected "
                    f"{action}:<point>[:N] with N >= 1"
                )
            return _Directive(action, point, limit, 0.0)
        raise ConfigurationError(
            f"unknown fault action in {part!r}; expected crash:, raise:, "
            "or delay:"
        )

    def points(self) -> list[str]:
        """The instrumentation points this plan arms (for tests)."""
        return sorted(self._directives)

    def fire(self, point: str) -> None:
        """Apply every directive armed at ``point`` (see module docs)."""
        directives = self._directives.get(point)
        if not directives:
            return
        crash = False
        raise_now = False
        delay = 0.0
        with self._lock:
            for directive in directives:
                directive.count += 1
                if directive.action == "delay":
                    delay = max(delay, directive.seconds)
                elif directive.action == "crash":
                    crash = crash or directive.count == directive.limit
                elif directive.count <= directive.limit:
                    raise_now = True
        if delay:
            time.sleep(delay)
        if crash:
            # The kill -9 model: no flush, no atexit, no cleanup.
            os._exit(CRASH_EXIT_CODE)
        if raise_now:
            raise FaultInjected(f"injected fault at {point!r}")


#: The active plan. ``None`` (the overwhelmingly common case) makes
#: :func:`fire` a single attribute load and comparison.
_PLAN: FaultPlan | None = None


def _plan_from_env() -> FaultPlan | None:
    spec = os.environ.get(FAULTS_ENV, "").strip()
    return FaultPlan(spec) if spec else None


_PLAN = _plan_from_env()


def fire(point: str) -> None:
    """Fire one instrumentation point; no-op unless a plan arms it."""
    plan = _PLAN
    if plan is None:
        return
    plan.fire(point)


def configure(spec: str | None) -> FaultPlan | None:
    """Install a fault plan in this process (tests; ``None`` disarms).

    Returns the installed plan so tests can inspect firing counts.
    Spawn-pool workers do not see this — they re-read ``REPRO_FAULTS``
    from the environment at import, so worker-side faults must be armed
    via the environment variable.
    """
    global _PLAN
    _PLAN = FaultPlan(spec) if spec else None
    return _PLAN


def reset() -> None:
    """Re-arm from the environment (drop any :func:`configure` override)."""
    global _PLAN
    _PLAN = _plan_from_env()


def active_plan() -> FaultPlan | None:
    """The currently armed plan, if any."""
    return _PLAN

"""Fleet mode: N server processes draining one durable state directory.

PR 7 made a single ``repro serve --state-dir`` crash-safe: kill -9 it
and the restarted process recovers the queue and resumes sweeps from the
result cache. This module removes the "exactly one server" assumption.
Any number of ``repro serve --fleet`` processes may share one state dir
(and one ``--cache-root``); they coordinate through **lease files** so a
job runs on exactly one of them, and a server that dies mid-job loses
its leases to a peer that requeues the work through the same recovery
path — resumed sweeps stay bit-identical because every finished cell is
already in the shared :class:`~repro.explore.cache.ResultCache`.

**The lease protocol.** Each claimed job carries one extra file in its
store directory::

    <root>/jobs/<job_id>/lease.json

* **Claim** is ``open(..., O_CREAT | O_EXCL)``: the filesystem picks
  exactly one winner per path, no lock server involved. The file holds
  the owner id, host, pid, ttl, and a monotonic-clock renewal stamp.
* **Renewal** rewrites the stamp *in place* (same inode) every
  ``ttl/3`` seconds. An owner whose own lease has already aged past the
  ttl refuses to renew it (self-fencing: a stalled process must assume
  a peer took over rather than resurrect its claim), and after every
  rewrite it verifies the path still resolves to the fd's inode — if a
  thief renamed the file away mid-write, the renewal is lost, not won.
* **Takeover** renames a stale lease aside (exactly one of several
  racing peers wins the rename), re-checks staleness on the renamed
  file (a stalled owner may have renewed in the window — if so the
  lease is put back), unlinks it, and claims fresh via O_EXCL. The
  winner requeues the job with a ``reclaimed from dead owner`` state
  event and runs it through the ordinary worker path.

Staleness is ``age > ttl``, judged on the stamp whose epoch we share
with the writer. A lease written on *this* host ages on the monotonic
stamp — CLOCK_MONOTONIC is per-boot system-wide on Linux, so stamps
compare exactly across processes on one host — with one accelerator: a
same-host lease whose pid is dead is stale immediately (the common
one-box-many-processes deployment, and the CI fleet-smoke job, never
wait out the ttl). A lease written on *another* host ages on the
wall-clock ``renewed_at`` stamp instead, padded by
:data:`DEFAULT_WALL_SKEW_S`: monotonic epochs are boot-relative and
unbounded apart between hosts (a later-booted host would judge every
peer lease permanently live, an earlier-booted one would judge them all
stale and double-run every job), so cross-host staleness must use the
one clock NTP keeps within a bounded skew.

**Why safety holds.** At most one process believes it owns a live lease
at any instant: O_EXCL serializes creation; renewal self-fences at the
ttl while takeover requires at least the ttl (plus the wall-skew margin
when the thief is on another host), so by the time a thief may steal,
the owner has already stopped renewing; and the rename-aside makes
stealing itself single-winner. The property test in ``tests/serve/test_fleet``
drives interleaved claim/renew/expire/release schedules over a fake
clock and asserts the invariant directly.

**What the coordinator does with it.** :class:`FleetCoordinator` wires
the lease store into a :class:`~repro.serve.manager.JobManager`:

* ``submit`` claims before creating the job record, so the store sink
  — and with it the append-only event log, which tolerates exactly one
  writer — is strictly lease-gated.
* A background thread renews held leases and scans the store for work:
  terminal peer jobs are adopted read-only (any server answers ``GET``
  for any job), live peer jobs have their local mirror refreshed from
  disk, and stale-leased jobs are taken over.
* ``drain()`` (SIGTERM) stops claiming and releases still-queued
  leases so peers pick the work up immediately; running jobs finish
  and release on their terminal transition.

Fault points: ``fleet.claim`` fires after the lease file exists but
before the claim returns (a ``crash`` here is the mid-claim death a
peer must clean up), ``fleet.renew`` fires before each renewal write
(a ``delay`` here is the renewal stall that forces a takeover).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.obs import get_logger
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.serve import faults
from repro.serve.jobs import TERMINAL_STATES, JobState, resolve_state
from repro.utils.errors import ConfigurationError

_log = get_logger("serve.fleet")

#: Lease file name inside each job's store directory.
LEASE_FILE = "lease.json"

#: On-disk lease schema version.
LEASE_VERSION = 1

#: Default lease time-to-live (seconds between renewals before peers
#: may take over). Renewal runs every ttl/3, so one missed heartbeat
#: never loses a lease.
DEFAULT_LEASE_TTL_S = 15.0

#: Extra margin added to the ttl when judging a *cross-host* lease's
#: staleness on its wall-clock stamp. The owner self-fences at exactly
#: ttl on its own monotonic clock, so a thief requiring ttl + skew on
#: wall time only ever steals after the owner stopped renewing, as long
#: as the hosts' wall clocks agree within this margin (NTP keeps real
#: fleets well inside it).
DEFAULT_WALL_SKEW_S = 5.0


def register_fleet_families(registry) -> None:
    """Pre-register the fleet families so a fleet server scrapes them at
    zero before its first claim (mirrors ``register_durability_families``;
    called from :meth:`FleetCoordinator.bind`, so non-fleet servers never
    grow these series — obs-smoke's REQUIRED_FAMILIES stays fleet-free)."""
    registry.counter(
        obs_names.FLEET_CLAIMS,
        "Lease-claim attempts by outcome.",
        labels=("outcome",),
    ).labels(outcome="won")
    registry.counter(
        obs_names.FLEET_TAKEOVERS,
        "Stale leases taken over from a dead or silent peer.",
    ).labels()
    registry.counter(
        obs_names.FLEET_RENEWALS,
        "Heartbeat lease renewals by outcome.",
        labels=("outcome",),
    ).labels(outcome="ok")


@dataclass(frozen=True)
class LeaseInfo:
    """One parsed lease file."""

    owner: str
    host: str
    pid: int
    acquired_mono: float
    renewed_mono: float
    renewed_at: float
    ttl_s: float


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of one :meth:`LeaseStore.claim` attempt.

    ``reclaimed_from`` names the previous owner when the claim went
    through a stale-lease takeover; ``None`` for a fresh claim.
    """

    won: bool
    reclaimed_from: str | None = None


def default_owner_id() -> str:
    """A fleet-unique server identity: ``<host>-<pid>-<random8>``.

    The random suffix keeps identities unique across pid reuse; the
    host/pid prefix keeps lease files and log lines debuggable.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class LeaseStore:
    """Lease-file mechanics over one ``jobs/`` directory.

    Thread-safe: the held-set is lock-guarded; the file operations are
    individually atomic (O_EXCL create, in-place rewrite, rename) and
    the protocol in the module docstring makes their interleavings safe.

    Args:
        jobs_dir: The store's ``jobs/`` directory (leases live inside
            each job's subdirectory).
        owner_id: This process's fleet identity.
        ttl_s: Seconds without renewal before peers may take over.
        clock: Monotonic clock, injectable for the property tests. Only
            ever compared against stamps written on this same host (one
            boot, one epoch); cross-host leases age on wall time.
        wall_skew_s: Wall-clock disagreement tolerated between hosts
            when judging a cross-host lease's staleness (added to the
            ttl; see :data:`DEFAULT_WALL_SKEW_S`).
    """

    def __init__(
        self,
        jobs_dir: str | Path,
        owner_id: str | None = None,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock=time.monotonic,
        wall_skew_s: float = DEFAULT_WALL_SKEW_S,
    ):
        if ttl_s <= 0:
            raise ConfigurationError(f"ttl_s must be > 0, got {ttl_s}")
        if wall_skew_s < 0:
            raise ConfigurationError(
                f"wall_skew_s must be >= 0, got {wall_skew_s}"
            )
        self.jobs_dir = Path(jobs_dir)
        self.owner_id = owner_id or default_owner_id()
        self.ttl_s = ttl_s
        self.clock = clock
        self.wall_skew_s = wall_skew_s
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._held: set[str] = set()

    # -- introspection -------------------------------------------------------

    def lease_path(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id in (".", ".."):
            raise ConfigurationError(f"invalid job id {job_id!r}")
        return self.jobs_dir / job_id / LEASE_FILE

    def held(self) -> set[str]:
        """Job ids this store believes it holds leases for."""
        with self._lock:
            return set(self._held)

    def owns(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._held

    def peek(self, job_id: str) -> LeaseInfo | None:
        """The current lease on ``job_id``, or ``None`` (absent/torn)."""
        info, _ = self._read(self.lease_path(job_id))
        return info

    def is_stale(self, job_id: str) -> bool:
        """True when ``job_id``'s lease is absent, expired, or dead-owned."""
        path = self.lease_path(job_id)
        info, mtime = self._read(path)
        return self._stale(info, mtime)

    # -- the protocol --------------------------------------------------------

    def claim(self, job_id: str) -> ClaimResult:
        """Try to acquire the lease on ``job_id``.

        Wins a missing lease via O_EXCL and a stale one via the
        rename-aside takeover; loses (without blocking) to any live
        lease — including a mid-steal recheck that finds the "stale"
        owner renewed after all.
        """
        path = self.lease_path(job_id)
        try:
            # Submission claims before the record exists (the lease must
            # gate the record's first persisted event), so the claim
            # creates the job directory.
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create job directory {path.parent}: {exc}"
            ) from exc
        reclaimed_from: str | None = None
        for _ in range(3):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                info, mtime = self._read(path)
                if not self._stale(info, mtime):
                    return self._lost(job_id)
                stolen = self._steal(path, info)
                if stolen is None:
                    return self._lost(job_id)
                reclaimed_from = stolen or reclaimed_from
                continue  # lease path is free now; retry the O_EXCL create
            except FileNotFoundError:
                # Job directory is gone (evicted between scan and claim).
                return self._lost(job_id)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot create lease {path}: {exc}"
                ) from exc
            try:
                now = self.clock()
                os.write(fd, self._payload(acquired=now, renewed=now))
                os.fsync(fd)
            finally:
                os.close(fd)
            # Crash point: the lease exists on disk but nothing has been
            # scheduled — the orphan shape a peer's scan must clean up.
            faults.fire("fleet.claim")
            with self._lock:
                self._held.add(job_id)
            registry = obs_metrics.get_registry()
            registry.counter(
                obs_names.FLEET_CLAIMS,
                "Lease-claim attempts by outcome.",
                labels=("outcome",),
            ).labels(outcome="won").inc()
            if reclaimed_from is not None:
                registry.counter(
                    obs_names.FLEET_TAKEOVERS,
                    "Stale leases taken over from a dead or silent peer.",
                ).inc()
            return ClaimResult(won=True, reclaimed_from=reclaimed_from)
        return self._lost(job_id)

    def renew(self, job_id: str) -> bool:
        """Heartbeat one held lease; False means the lease is lost.

        Self-fencing: a lease we let age past the ttl is *not* renewed
        even if nobody stole it yet — by our own rules a peer may take
        it at any instant, so the only safe belief is "lost". The
        in-place rewrite keeps the inode, and the post-write stat
        detects a thief that renamed the file away mid-write.
        """
        faults.fire("fleet.renew")
        path = self.lease_path(job_id)
        ok = self._renew_file(path)
        if not ok:
            with self._lock:
                self._held.discard(job_id)
        obs_metrics.get_registry().counter(
            obs_names.FLEET_RENEWALS,
            "Heartbeat lease renewals by outcome.",
            labels=("outcome",),
        ).labels(outcome="ok" if ok else "lost").inc()
        return ok

    def release(self, job_id: str) -> None:
        """Give the lease up (job finished, or drain returning queued work).

        Only a lease that is still ours *and still live* is unlinked —
        an expired one may already belong to a thief mid-takeover, and
        unlinking it out from under them could hand the job to a third
        server while the thief also runs it.
        """
        with self._lock:
            held = job_id in self._held
            self._held.discard(job_id)
        if not held:
            return
        path = self.lease_path(job_id)
        info, mtime = self._read(path)
        if info is None or info.owner != self.owner_id:
            return
        if self._stale(info, mtime):
            return
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- internals -----------------------------------------------------------

    def _lost(self, job_id: str) -> ClaimResult:
        obs_metrics.get_registry().counter(
            obs_names.FLEET_CLAIMS,
            "Lease-claim attempts by outcome.",
            labels=("outcome",),
        ).labels(outcome="lost").inc()
        return ClaimResult(won=False)

    def _payload(self, acquired: float, renewed: float) -> bytes:
        return json.dumps({
            "lease_version": LEASE_VERSION,
            "owner": self.owner_id,
            "host": self.host,
            "pid": self.pid,
            "acquired_mono": acquired,
            "renewed_mono": renewed,
            "renewed_at": time.time(),
            "ttl_s": self.ttl_s,
        }, sort_keys=True).encode("utf-8")

    @staticmethod
    def _read(path: Path) -> tuple[LeaseInfo | None, float | None]:
        """Parse a lease file; ``(None, mtime)`` for torn/mid-rewrite."""
        try:
            data = path.read_bytes()
            mtime = path.stat().st_mtime
        except OSError:
            return None, None
        try:
            payload = json.loads(data)
            return LeaseInfo(
                owner=str(payload["owner"]),
                host=str(payload["host"]),
                pid=int(payload["pid"]),
                acquired_mono=float(payload["acquired_mono"]),
                renewed_mono=float(payload["renewed_mono"]),
                renewed_at=float(payload["renewed_at"]),
                ttl_s=float(payload["ttl_s"]),
            ), mtime
        except (ValueError, KeyError, TypeError):
            # A rewrite in flight (truncate-then-write) parses as torn;
            # the mtime still tells a fresh rewrite from a dead one.
            return None, mtime

    def _stale(self, info: LeaseInfo | None, mtime: float | None) -> bool:
        if info is None and mtime is None:
            return True  # no lease at all
        if info is None:
            # Torn lease: fresh mtime means a renewal is mid-write (live);
            # an old one means the writer died mid-rewrite (stale). Wall
            # clock, not the injected one — mtimes are wall time.
            return time.time() - mtime > self.ttl_s
        return self._expired(info)

    def _expired(self, info: LeaseInfo) -> bool:
        """Has ``info``'s owner stopped renewing (by our best clock)?

        Same-host leases age on the monotonic stamp (one boot, one
        epoch — exact), with the dead-pid accelerator. Cross-host
        leases age on the wall-clock stamp plus the skew margin:
        monotonic epochs are boot-relative and never comparable between
        hosts, so using them here would judge every cross-host lease
        permanently live or instantly stale depending on boot order.
        """
        if info.host == self.host:
            if info.pid != self.pid and not _pid_alive(info.pid):
                return True  # dead same-host owner: skip the ttl wait
            return self.clock() - info.renewed_mono > info.ttl_s
        return time.time() - info.renewed_at > info.ttl_s + self.wall_skew_s

    def _steal(self, path: Path, info: LeaseInfo | None) -> str | None:
        """Rename a stale lease aside; the previous owner (or ``""``) on
        success, ``None`` when the steal was lost or proved premature."""
        aside = path.with_name(
            f"lease.steal.{self.owner_id}.{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(path, aside)
        except OSError:
            return None  # another thief (or a release) got there first
        # The owner may have renewed between our staleness read and the
        # rename — it holds an fd to this same inode. Re-check on the
        # renamed file (same epoch-aware rule as the first read); if it
        # is live after all, put it back.
        info2, _ = self._read(aside)
        if info2 is not None and not self._expired(info2):
            try:
                os.rename(aside, path)
            except OSError:
                pass
            return None
        try:
            os.unlink(aside)
        except OSError:
            pass
        previous = info2 or info
        return previous.owner if previous is not None else ""

    def _renew_file(self, path: Path) -> bool:
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return False  # stolen, released, or the job dir is gone
        try:
            data = os.read(fd, 1 << 16)
            try:
                payload = json.loads(data)
                owner = payload["owner"]
                renewed = float(payload["renewed_mono"])
                acquired = float(payload["acquired_mono"])
                ttl = float(payload.get("ttl_s", self.ttl_s))
            except (ValueError, KeyError, TypeError):
                return False  # not our intact lease; treat as lost
            if owner != self.owner_id:
                return False
            now = self.clock()
            if now - renewed > ttl:
                return False  # self-fence: expired means a peer may own it
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            os.write(fd, self._payload(acquired=acquired, renewed=now))
            os.fsync(fd)
            try:
                st = os.stat(path)
            except OSError:
                return False  # renamed away mid-write: the thief wins
            if (st.st_ino, st.st_dev) != (
                os.fstat(fd).st_ino, os.fstat(fd).st_dev
            ):
                return False
            return True
        except OSError:
            return False
        finally:
            os.close(fd)


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, not ours
    except OSError:
        return True  # be conservative: unknown means alive
    return True


class FleetCoordinator:
    """Glue between a :class:`LeaseStore` and one :class:`JobManager`.

    Construct one per server and pass it to
    ``JobManager(..., fleet=coordinator)``; the manager binds it during
    construction (claims gate submission and the store sink) and the
    coordinator's background thread does the renewing and scanning.

    Args:
        store: The shared :class:`~repro.serve.store.JobStore`.
        owner_id: Fleet identity; generated when omitted.
        lease_ttl_s: See :class:`LeaseStore`.
        poll_interval_s: How often the scan pass looks for peer jobs to
            mirror and stale leases to take over.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        store,
        owner_id: str | None = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = 1.0,
        clock=time.monotonic,
    ):
        if poll_interval_s <= 0:
            raise ConfigurationError(
                f"poll_interval_s must be > 0, got {poll_interval_s}"
            )
        self.store = store
        self.leases = LeaseStore(
            store.jobs_dir, owner_id=owner_id, ttl_s=lease_ttl_s, clock=clock,
        )
        self.owner_id = self.leases.owner_id
        self.lease_ttl_s = lease_ttl_s
        self.renew_interval_s = lease_ttl_s / 3.0
        self.poll_interval_s = poll_interval_s
        self.takeovers = 0
        self._manager = None
        self._stop = threading.Event()
        self._draining = False
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self, manager) -> None:
        """Attach to the manager (called from ``JobManager.__init__``)."""
        self._manager = manager
        registry = obs_metrics.get_registry()
        register_fleet_families(registry)
        registry.gauge(
            obs_names.FLEET_LEASES_HELD, "Leases this server currently holds."
        ).set_function(lambda: len(self.leases.held()))

    def start(self) -> None:
        """Start the renew/scan thread (after the recovery pass)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet", daemon=True
        )
        self._thread.start()

    def drain(self) -> None:
        """Stop claiming; hand still-queued claimed work back to the fleet.

        Running jobs are left to finish (their leases release on the
        terminal transition); queued ones have their leases released so
        a peer's next scan picks them up — their records stay persisted
        as ``queued``, which is exactly the shape takeover expects.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        manager = self._manager
        released = 0
        for job_id in self.leases.held():
            state = None
            if manager is not None:
                handle = manager.get(job_id)
                state = handle.state if handle is not None else None
            if state is None or state is JobState.QUEUED:
                self.leases.release(job_id)
                released += 1
        _log.info(
            "fleet drain",
            extra={"fields": {
                "owner": self.owner_id, "released_queued": released,
                "still_running": len(self.leases.held()),
            }},
        )

    def close(self) -> None:
        """Stop the thread and release every remaining lease."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        for job_id in self.leases.held():
            self.leases.release(job_id)

    # -- the manager-facing surface ------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def owns(self, job_id: str) -> bool:
        return self.leases.owns(job_id)

    def try_claim(self, job_id: str) -> ClaimResult:
        """Claim on behalf of a submission; refuses while draining."""
        if self.draining:
            raise ConfigurationError(
                "server is draining; submit to another fleet member"
            )
        return self.leases.claim(job_id)

    def release(self, job_id: str) -> None:
        self.leases.release(job_id)

    def stats(self) -> dict:
        """The /healthz fleet block."""
        return {
            "owner": self.owner_id,
            "lease_ttl_s": self.lease_ttl_s,
            "leases_held": len(self.leases.held()),
            "takeovers": self.takeovers,
            "draining": self.draining,
        }

    # -- the background loop -------------------------------------------------

    def _loop(self) -> None:
        tick = min(self.renew_interval_s, self.poll_interval_s, 0.5)
        last_renew = last_scan = self.leases.clock()
        while not self._stop.wait(tick):
            now = self.leases.clock()
            try:
                if now - last_renew >= self.renew_interval_s:
                    last_renew = now
                    self._renew_pass()
                if now - last_scan >= self.poll_interval_s:
                    last_scan = now
                    self._scan_pass()
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                _log.error(
                    "fleet loop error",
                    extra={"fields": {
                        "owner": self.owner_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    }},
                )

    def poll_once(self) -> None:
        """One renew + scan round, synchronously (tests)."""
        self._renew_pass()
        self._scan_pass()

    def _renew_pass(self) -> None:
        manager = self._manager
        for job_id in self.leases.held():
            handle = manager.get(job_id) if manager is not None else None
            if handle is not None and handle.state in TERMINAL_STATES:
                self.leases.release(job_id)
                continue
            if not self.leases.renew(job_id):
                _log.warning(
                    "lease lost",
                    extra={"fields": {"owner": self.owner_id, "job": job_id}},
                )
                if handle is not None and manager is not None:
                    manager._fleet_lease_lost(handle._record)

    def _scan_pass(self) -> None:
        manager = self._manager
        if manager is None or self.draining:
            return
        for job_id in self.store.job_ids():
            if self._stop.is_set():
                return
            if self.leases.owns(job_id):
                continue
            try:
                self._scan_job(manager, job_id)
            except Exception as exc:  # noqa: BLE001 — one bad dir must not stall the scan
                _log.warning(
                    "fleet scan skipping job",
                    extra={"fields": {
                        "job": job_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    }},
                )

    def _scan_job(self, manager, job_id: str) -> None:
        stored_payload = self.store.read_record(job_id)
        handle = manager.get(job_id)
        if stored_payload is None:
            # A lease (or debris) without a record: the mid-claim-crash
            # orphan. No client ever saw a 202 for it — once its lease is
            # stale, claim it and clear the directory.
            if handle is None and self.leases.is_stale(job_id):
                if self.leases.claim(job_id).won:
                    self.leases.release(job_id)
                    self.store.delete(job_id)
                    _log.warning(
                        "cleared orphan job directory",
                        extra={"fields": {"job": job_id}},
                    )
            return
        try:
            disk_state = resolve_state(stored_payload["job"]["state"])
        except (KeyError, TypeError, ConfigurationError):
            return
        if disk_state in TERMINAL_STATES:
            # A peer finished it: adopt/refresh the read-only mirror so
            # this server answers GETs (and dedupes) with the result.
            manager._fleet_sync_from_disk(job_id, stored_payload)
            return
        if not self.leases.is_stale(job_id):
            # A live peer owns it: keep the local mirror's events fresh
            # for clients polling this server.
            if handle is not None:
                manager._fleet_sync_from_disk(job_id, stored_payload)
            return
        claim = self.leases.claim(job_id)
        if not claim.won:
            return
        self.takeovers += 1
        reason = (
            f"reclaimed from dead owner {claim.reclaimed_from}"
            if claim.reclaimed_from
            else "claimed from fleet queue"
        )
        _log.warning(
            "fleet takeover" if claim.reclaimed_from else "fleet claim",
            extra={"fields": {
                "owner": self.owner_id, "job": job_id, "reason": reason,
            }},
        )
        manager._fleet_run_claimed(job_id, stored_payload, reason)

"""Dependency-free HTTP front end over a :class:`JobManager`.

Built entirely on the stdlib (``http.server.ThreadingHTTPServer``) so the
server runs wherever the library does. The surface is the v3 job API::

    POST   /v3/jobs              submit (v3 envelope, or bare v1/v2
                                 optimize / batch payloads — up-converted)
    GET    /v3/jobs              list job envelopes (summaries, no results)
    GET    /v3/jobs/{id}         one job envelope, result included when done
    GET    /v3/jobs/{id}/events  the event log as NDJSON; ``?after=N``
                                 resumes mid-stream, ``?follow=1`` keeps the
                                 connection open and streams live events
                                 until the job is terminal
    DELETE /v3/jobs/{id}         cooperative cancellation
    GET    /healthz              liveness + schema version

Responses are JSON (NDJSON for event streams). Errors are JSON too:
``{"error": ..., "path": ...}`` with ``path`` set for located scenario
validation failures — the same message a local caller would get, so a
remote client can surface it verbatim.

Connections are HTTP/1.0 (one request per connection): an event stream is
then delimited by connection close, which every client — ``urllib``
included — already handles, with no chunked-encoding machinery.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.api.requests import (
    RESPONSE_SCHEMA_VERSION,
    BatchRequest,
    request_from_dict,
)
from repro.api.scenario import ScenarioValidationError
from repro.serve.manager import JobManager
from repro.utils.errors import ReproError

#: Largest accepted request body; a scenario payload is a few KB, so this
#: is generous while still bounding a misbehaving client.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Quiet-stream heartbeat period for ``?follow=1``: a blank NDJSON line
#: (clients skip it) written whenever no event arrives for this long, so a
#: disconnected follower's handler thread hits BrokenPipeError and exits
#: instead of parking forever on a job that emits nothing.
FOLLOW_HEARTBEAT_S = 15.0


class ServeHandler(BaseHTTPRequestHandler):
    """Route the v3 job API onto the server's :class:`JobManager`."""

    server_version = "repro-serve/3"
    protocol_version = "HTTP/1.0"

    # -- plumbing ------------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, path: str | None = None
    ) -> None:
        self._send_json(status, {"error": message, "path": path})

    def _read_body(self) -> dict | None:
        """The request body as parsed JSON, or ``None`` after replying 400."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_json(
                400, f"request body must be 1..{MAX_BODY_BYTES} bytes of JSON"
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _route(self) -> tuple[str, dict[str, list[str]]]:
        parsed = urlparse(self.path)
        return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

    def _job_id(self, path: str, suffix: str = "") -> str | None:
        """Extract ``{id}`` from ``/v3/jobs/{id}[/suffix]``; else ``None``."""
        prefix = "/v3/jobs/"
        if not path.startswith(prefix):
            return None
        rest = path[len(prefix):]
        if suffix:
            if not rest.endswith("/" + suffix):
                return None
            rest = rest[: -len("/" + suffix)]
        return rest if rest and "/" not in rest else None

    # -- methods -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, query = self._route()
        if path == "/healthz":
            self._send_json(
                200, {"ok": True, "schema_version": RESPONSE_SCHEMA_VERSION}
            )
            return
        if path == "/v3/jobs":
            self._send_json(200, {
                "schema_version": RESPONSE_SCHEMA_VERSION,
                "jobs": [
                    handle.info(include_result=False).to_dict()["job"]
                    for handle in self.manager.handles()
                ],
            })
            return
        events_id = self._job_id(path, suffix="events")
        if events_id is not None:
            self._get_events(events_id, query)
            return
        job_id = self._job_id(path)
        if job_id is not None:
            handle = self.manager.get(job_id)
            if handle is None:
                self._send_error_json(404, f"unknown job id {job_id!r}")
                return
            self._send_json(200, handle.info().to_dict())
            return
        self._send_error_json(404, f"no route for GET {path}")

    def _get_events(self, job_id: str, query: dict[str, list[str]]) -> None:
        handle = self.manager.get(job_id)
        if handle is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        try:
            after = int(query.get("after", ["0"])[0])
        except ValueError:
            self._send_error_json(400, "'after' must be an integer")
            return
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            if follow:
                # Live stream: one JSON line per event until the job's
                # terminal event; connection close ends the stream. Quiet
                # stretches emit blank-line heartbeats (handle.stream's
                # timeout raises ConfigurationError between events) both
                # to keep intermediaries from timing out and to detect
                # disconnected clients.
                cursor = after
                while True:
                    try:
                        for event in handle.stream(
                            after=cursor, timeout=FOLLOW_HEARTBEAT_S
                        ):
                            cursor = event.seq + 1
                            self._write_line(event.to_dict())
                        break  # terminal event delivered
                    except ReproError:
                        self.wfile.write(b"\n")
                        self.wfile.flush()
            else:
                for event in handle.events(after=after):
                    self._write_line(event.to_dict())
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _write_line(self, payload: dict) -> None:
        self.wfile.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        self.wfile.flush()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path, _ = self._route()
        if path != "/v3/jobs":
            self._send_error_json(404, f"no route for POST {path}")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            request = request_from_dict(payload)
        except ScenarioValidationError as exc:
            self._send_error_json(400, str(exc), path=exc.path)
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        if isinstance(request, BatchRequest):
            # Wire-supplied batch requests are untrusted: bound their
            # process fan-out and confine their server-side cache path.
            # Over-cap workers are *rejected*, not silently clamped — job
            # ids are content-derived, and a silent rewrite would make
            # the id depend on this server's core count. (cache_dir IS
            # rewritten under the root; the envelope's id is therefore
            # authoritative for cached batches — clients must use it
            # rather than re-deriving ids from their own payload.)
            workers_cap = max(1, os.cpu_count() or 1)
            if request.workers > workers_cap:
                self._send_error_json(
                    400,
                    f"workers={request.workers} exceeds this server's cap "
                    f"of {workers_cap}; lower it (cells still parallelize "
                    "across chains up to the cap)",
                )
                return
            if request.cache_dir is not None:
                request = self._sandbox_cache_dir(request)
                if request is None:
                    return
        try:
            handle = self.manager.submit(request)
        except ReproError as exc:
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, handle.info().to_dict())

    def _sandbox_cache_dir(self, request: BatchRequest) -> BatchRequest | None:
        """Map a client-supplied ``cache_dir`` under the server's cache root.

        ``cache_dir`` names a *server-side* directory; accepting it
        verbatim would hand any network client an arbitrary
        mkdir/file-write primitive. So it is only honored when the
        operator opted in (``repro serve --cache-root DIR``), and then as
        a relative name confined under that root — absolute paths and
        ``..`` traversal are rejected. Replies 400 and returns ``None``
        on rejection.
        """
        root = getattr(self.server, "cache_root", None)
        if root is None:
            self._send_error_json(
                400,
                "this server does not accept client-supplied cache paths; "
                "start it with --cache-root to enable sandboxed batch "
                "caches, or drop cache_dir from the request",
            )
            return None
        name = request.cache_dir
        candidate = (root / name).resolve()
        if Path(name).is_absolute() or not candidate.is_relative_to(root):
            self._send_error_json(
                400,
                f"cache_dir {name!r} must be a relative path inside the "
                "server's cache root",
            )
            return None
        return replace(request, cache_dir=str(candidate))

    def do_DELETE(self) -> None:  # noqa: N802 — http.server API
        path, _ = self._route()
        job_id = self._job_id(path)
        if job_id is None:
            self._send_error_json(404, f"no route for DELETE {path}")
            return
        handle = self.manager.get(job_id)
        if handle is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        handle.cancel()
        self._send_json(200, handle.info().to_dict())


class ServeServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`JobManager`."""

    daemon_threads = True  # event streams must not block shutdown

    def __init__(
        self,
        address,
        manager: JobManager,
        verbose: bool = False,
        cache_root: str | Path | None = None,
    ):
        super().__init__(address, ServeHandler)
        self.manager = manager
        self.verbose = verbose
        self.cache_root = (
            None if cache_root is None else Path(cache_root).resolve()
        )


def create_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8350,
    verbose: bool = False,
    cache_root: str | Path | None = None,
) -> ServeServer:
    """Bind the job API; ``port=0`` picks a free port (tests).

    ``cache_root`` opts in to client-supplied batch ``cache_dir`` names,
    confined under that directory; without it they are rejected with a
    clear 400. The caller owns the loop: ``server.serve_forever()`` to
    run, ``server.shutdown()`` + ``manager.shutdown()`` to stop.
    """
    return ServeServer(
        (host, port), manager, verbose=verbose, cache_root=cache_root
    )

"""Dependency-free HTTP front end over a :class:`JobManager`.

Built entirely on the stdlib (``http.server.ThreadingHTTPServer``) so the
server runs wherever the library does. The surface is the v3 job API::

    POST   /v3/jobs              submit (v3 envelope, or bare v1/v2
                                 optimize / batch payloads — up-converted)
    GET    /v3/jobs              list job envelopes (summaries, no results)
    GET    /v3/jobs/{id}         one job envelope, result included when done
    GET    /v3/jobs/{id}/events  the event log as NDJSON; ``?after=N``
                                 resumes mid-stream, ``?follow=1`` keeps the
                                 connection open and streams live events
                                 until the job is terminal
    DELETE /v3/jobs/{id}         cooperative cancellation
    GET    /v3/analyze          synchronous bottleneck analysis of a
                                 cache-resident sweep cell (never solves;
                                 404 when the cell was not swept)
    GET    /healthz              liveness, uptime, queue/job-state counts
    GET    /v3/metrics           Prometheus text exposition (version 0.0.4)

Responses are JSON (NDJSON for event streams). Errors are JSON too:
``{"error": ..., "path": ...}`` with ``path`` set for located scenario
validation failures — the same message a local caller would get, so a
remote client can surface it verbatim.

Connections are HTTP/1.0 (one request per connection): an event stream is
then delimited by connection close, which every client — ``urllib``
included — already handles, with no chunked-encoding machinery.

Observability: constructing a :class:`ServeServer` enables the process
metrics registry (a server *is* the opt-in) and points the job gauges at
its manager; every request is counted and timed under a normalized route
template (``/v3/jobs/{id}`` — never raw paths, which would be unbounded
label cardinality) and emits one structured access-log line at INFO
through ``repro.serve.http`` (visible with ``repro serve --log-level
info`` or ``REPRO_LOG=info``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.api.requests import (
    RESPONSE_SCHEMA_VERSION,
    AnalyzeRequest,
    BatchRequest,
    CostrategyRequest,
    request_from_dict,
)
from repro.api.scenario import ScenarioValidationError
from repro.api.service import (
    register_analysis_families,
    register_strategy_families,
)
from repro.obs import get_logger
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.serve.manager import JobManager
from repro.serve.store import register_durability_families
from repro.utils.errors import AnalysisCacheMiss, ReproError

_log = get_logger("serve.http")

#: Largest accepted request body; a scenario payload is a few KB, so this
#: is generous while still bounding a misbehaving client.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Quiet-stream heartbeat period for ``?follow=1``: a blank NDJSON line
#: (clients skip it) written whenever no event arrives for this long, so a
#: disconnected follower's handler thread hits BrokenPipeError and exits
#: instead of parking forever on a job that emits nothing.
FOLLOW_HEARTBEAT_S = 15.0


class ServeHandler(BaseHTTPRequestHandler):
    """Route the v3 job API onto the server's :class:`JobManager`."""

    server_version = "repro-serve/3"
    protocol_version = "HTTP/1.0"

    # -- plumbing ------------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # http.server's own per-response lines (and error notices) go to
        # the structured logger at DEBUG; the INFO-level access log is
        # emitted once per request by _observed, with timing attached.
        _log.debug("%s - %s" % (self.address_string(), format % args))

    def send_response(self, code: int, message: str | None = None) -> None:
        self._status = code
        super().send_response(code, message)

    def _route_label(self) -> str:
        """The bounded route template this request hit (metric label)."""
        path, _ = self._route()
        if path in ("/healthz", "/v3/metrics", "/v3/jobs", "/v3/analyze"):
            return path
        if self._job_id(path, suffix="events") is not None:
            return "/v3/jobs/{id}/events"
        if self._job_id(path) is not None:
            return "/v3/jobs/{id}"
        return "other"

    def _observed(self, handler) -> None:
        """Run one request handler with timing, metrics, and access log."""
        self._status = 0
        begin = time.perf_counter()
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - begin
            route = self._route_label()
            status = str(self._status or 0)
            registry = obs_metrics.get_registry()
            registry.counter(
                obs_names.HTTP_REQUESTS,
                "HTTP requests served, by route template and status.",
                labels=("route", "status"),
            ).labels(route=route, status=status).inc()
            registry.histogram(
                obs_names.HTTP_SECONDS,
                "HTTP request handling wall time by route template.",
                labels=("route",),
            ).labels(route=route).observe(elapsed)
            fields = {
                "method": self.command,
                "path": self.path,
                "status": self._status or 0,
                "duration_ms": round(elapsed * 1e3, 3),
            }
            job_ref = getattr(self, "_job_ref", None)
            if job_ref:
                fields["job"] = job_ref
            _log.info("request", extra={"fields": fields})

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, path: str | None = None
    ) -> None:
        self._send_json(status, {"error": message, "path": path})

    def _read_body(self) -> dict | None:
        """The request body as parsed JSON, or ``None`` after replying 400."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_json(
                400, f"request body must be 1..{MAX_BODY_BYTES} bytes of JSON"
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _route(self) -> tuple[str, dict[str, list[str]]]:
        parsed = urlparse(self.path)
        return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

    def _job_id(self, path: str, suffix: str = "") -> str | None:
        """Extract ``{id}`` from ``/v3/jobs/{id}[/suffix]``; else ``None``."""
        prefix = "/v3/jobs/"
        if not path.startswith(prefix):
            return None
        rest = path[len(prefix):]
        if suffix:
            if not rest.endswith("/" + suffix):
                return None
            rest = rest[: -len("/" + suffix)]
        return rest if rest and "/" not in rest else None

    # -- methods -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._observed(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._observed(self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802 — http.server API
        self._observed(self._handle_delete)

    def _handle_get(self) -> None:
        path, query = self._route()
        if path == "/healthz":
            counts = self.manager.counts()
            started = getattr(self.server, "started_at", None)
            terminal = (
                counts["done"] + counts["failed"] + counts["cancelled"]
            )
            payload = {
                "ok": True,
                "schema_version": RESPONSE_SCHEMA_VERSION,
                "uptime_s": (
                    None if started is None
                    else round(time.time() - started, 3)
                ),
                "queue_depth": counts["queued"],
                "active_jobs": counts["running"],
                "terminal_jobs": terminal,
                "recovered_jobs": getattr(self.manager, "recovered_jobs", 0),
                "jobs": counts,
            }
            fleet = getattr(self.manager, "fleet", None)
            if fleet is not None:
                # Owner id, leases held, takeovers, draining — what a
                # fleet load balancer needs to steer and drain by.
                payload["fleet"] = fleet.stats()
            self._send_json(200, payload)
            return
        if path == "/v3/metrics":
            body = obs_metrics.get_registry().render().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/v3/jobs":
            self._send_json(200, {
                "schema_version": RESPONSE_SCHEMA_VERSION,
                "jobs": [
                    handle.info(include_result=False).to_dict()["job"]
                    for handle in self.manager.handles()
                ],
            })
            return
        if path == "/v3/analyze":
            self._get_analyze(query)
            return
        events_id = self._job_id(path, suffix="events")
        if events_id is not None:
            self._job_ref = events_id
            self._get_events(events_id, query)
            return
        job_id = self._job_id(path)
        if job_id is not None:
            self._job_ref = job_id
            handle = self.manager.get(job_id)
            if handle is None:
                self._send_error_json(404, f"unknown job id {job_id!r}")
                return
            self._send_json(200, handle.info().to_dict())
            return
        self._send_error_json(404, f"no route for GET {path}")

    def _get_events(self, job_id: str, query: dict[str, list[str]]) -> None:
        handle = self.manager.get(job_id)
        if handle is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        try:
            after = int(query.get("after", ["0"])[0])
        except ValueError:
            self._send_error_json(400, "'after' must be an integer")
            return
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            if follow:
                # Live stream: one JSON line per event until the job's
                # terminal event; connection close ends the stream. Quiet
                # stretches emit blank-line heartbeats (handle.stream's
                # timeout raises ConfigurationError between events) both
                # to keep intermediaries from timing out and to detect
                # disconnected clients.
                cursor = after
                while True:
                    try:
                        for event in handle.stream(
                            after=cursor, timeout=FOLLOW_HEARTBEAT_S
                        ):
                            cursor = event.seq + 1
                            self._write_line(event.to_dict())
                        break  # terminal event delivered
                    except ReproError:
                        self.wfile.write(b"\n")
                        self.wfile.flush()
            else:
                for event in handle.events(after=after):
                    self._write_line(event.to_dict())
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _get_analyze(self, query: dict[str, list[str]]) -> None:
        """Synchronous bottleneck analysis of a cache-resident sweep cell.

        The fast path the issue promises: for a point the server already
        swept (a batch job, optionally with a sandboxed cache dir), the
        answer comes from the evaluator plus the analyze memo — no job
        round-trip, no solver. The request is expressed entirely in query
        parameters (``workload``, ``topology``, ``budget_gbps``, optional
        ``scheme``, ``caps`` as comma-separated ``dim:gbps`` pairs, and
        ``cache``) because the target must
        already exist; a cell that was never swept is a 404, never a
        solve — analysis is read-only by contract.
        """
        # Lazy: the serve tier reaches explore only through this path and
        # the batch worker, mirroring the service's own lazy import.
        from repro.api.registry import resolve_scheme
        from repro.explore.spec import ExplorationPoint

        def param(name: str) -> str | None:
            values = query.get(name)
            return values[-1] if values else None

        missing = [
            name for name in ("workload", "topology", "budget_gbps")
            if param(name) is None
        ]
        if missing:
            self._send_error_json(
                400, f"missing query parameter(s): {', '.join(missing)}"
            )
            return
        cache_dir = None
        if param("cache") is not None:
            cache_dir = self._sandboxed_cache_path(param("cache"))
            if cache_dir is None:
                return
        try:
            caps = tuple(
                (int(entry.split(":", 1)[0]), float(entry.split(":", 1)[1]))
                for entry in (param("caps") or "").split(",") if entry
            )
            cell = ExplorationPoint(
                workload=param("workload"),
                topology=param("topology"),
                total_bw_gbps=float(param("budget_gbps")),
                scheme=resolve_scheme(param("scheme") or "perf"),
                dim_caps_gbps=caps,
            )
            request = AnalyzeRequest(cell=cell, cache_dir=cache_dir)
            response = self.manager.service.submit(request)
        except AnalysisCacheMiss as exc:
            self._send_error_json(404, str(exc))
            return
        except (ReproError, ValueError, IndexError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, response.to_dict())

    def _write_line(self, payload: dict) -> None:
        self.wfile.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        self.wfile.flush()

    def _handle_post(self) -> None:
        path, _ = self._route()
        if path != "/v3/jobs":
            self._send_error_json(404, f"no route for POST {path}")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            request = request_from_dict(payload)
        except ScenarioValidationError as exc:
            self._send_error_json(400, str(exc), path=exc.path)
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        if isinstance(request, BatchRequest):
            # Wire-supplied batch requests are untrusted: bound their
            # process fan-out and confine their server-side cache path.
            # Over-cap workers are *rejected*, not silently clamped — job
            # ids are content-derived, and a silent rewrite would make
            # the id depend on this server's core count. (cache_dir IS
            # rewritten under the root; the envelope's id is therefore
            # authoritative for cached batches — clients must use it
            # rather than re-deriving ids from their own payload.)
            workers_cap = max(1, os.cpu_count() or 1)
            if request.workers > workers_cap:
                self._send_error_json(
                    400,
                    f"workers={request.workers} exceeds this server's cap "
                    f"of {workers_cap}; lower it (cells still parallelize "
                    "across chains up to the cap)",
                )
                return
            if request.cache_dir is not None:
                request = self._sandbox_cache_dir(request)
                if request is None:
                    return
        elif isinstance(request, CostrategyRequest):
            # Costrategy requests carry the same server-side cache-path
            # field as batches; confine it identically.
            if request.cache_dir is not None:
                request = self._sandbox_cache_dir(request)
                if request is None:
                    return
        try:
            handle = self.manager.submit(request)
        except ReproError as exc:
            self._send_error_json(503, str(exc))
            return
        self._job_ref = handle.id
        self._send_json(202, handle.info().to_dict())

    def _sandbox_cache_dir(
        self, request: BatchRequest | CostrategyRequest
    ) -> BatchRequest | CostrategyRequest | None:
        """Map a client-supplied ``cache_dir`` under the server's cache root.

        Replies 400 and returns ``None`` on rejection.
        """
        path = self._sandboxed_cache_path(request.cache_dir)
        return None if path is None else replace(request, cache_dir=path)

    def _sandboxed_cache_path(self, name: str) -> str | None:
        """Confine a client-supplied cache name under the server's root.

        A cache name designates a *server-side* directory; accepting it
        verbatim would hand any network client an arbitrary
        mkdir/file-write primitive. So it is only honored when the
        operator opted in (``repro serve --cache-root DIR``), and then as
        a relative name confined under that root — absolute paths and
        ``..`` traversal are rejected. Replies 400 and returns ``None``
        on rejection. Both the batch submit path and ``GET /v3/analyze``
        go through this, so the two surfaces agree on what a cache name
        may reach.
        """
        root = getattr(self.server, "cache_root", None)
        if root is None:
            self._send_error_json(
                400,
                "this server does not accept client-supplied cache paths; "
                "start it with --cache-root to enable sandboxed caches, "
                "or drop the cache path from the request",
            )
            return None
        candidate = (root / name).resolve()
        if Path(name).is_absolute() or not candidate.is_relative_to(root):
            self._send_error_json(
                400,
                f"cache_dir {name!r} must be a relative path inside the "
                "server's cache root",
            )
            return None
        return str(candidate)

    def _handle_delete(self) -> None:
        path, _ = self._route()
        job_id = self._job_id(path)
        if job_id is None:
            self._send_error_json(404, f"no route for DELETE {path}")
            return
        self._job_ref = job_id
        handle = self.manager.get(job_id)
        if handle is None:
            self._send_error_json(404, f"unknown job id {job_id!r}")
            return
        handle.cancel()
        self._send_json(200, handle.info().to_dict())


class ServeServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`JobManager`.

    Construction turns the process metrics registry on (the server is
    the scrape surface, so running one *is* the observability opt-in)
    and points the live job gauges at ``manager``.
    """

    daemon_threads = True  # event streams must not block shutdown

    def __init__(
        self,
        address,
        manager: JobManager,
        verbose: bool = False,
        cache_root: str | Path | None = None,
    ):
        super().__init__(address, ServeHandler)
        self.manager = manager
        self.verbose = verbose
        self.cache_root = (
            None if cache_root is None else Path(cache_root).resolve()
        )
        self.started_at = time.time()
        registry = obs_metrics.enable_metrics()
        manager.register_gauges(registry)
        # Durability and analysis families fire rarely (recovery,
        # retries, fsyncs; analyze requests); pre-registering renders
        # them at zero so scrapes and the obs-smoke assertion see the
        # full table on a healthy server.
        register_durability_families(registry)
        register_analysis_families(registry)
        register_strategy_families(registry)


def create_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8350,
    verbose: bool = False,
    cache_root: str | Path | None = None,
) -> ServeServer:
    """Bind the job API; ``port=0`` picks a free port (tests).

    ``cache_root`` opts in to client-supplied batch ``cache_dir`` names,
    confined under that directory; without it they are rejected with a
    clear 400. The caller owns the loop: ``server.serve_forever()`` to
    run, ``server.shutdown()`` + ``manager.shutdown()`` to stop.
    """
    return ServeServer(
        (host, port), manager, verbose=verbose, cache_root=cache_root
    )

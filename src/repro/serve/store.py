"""File-backed durable job store: the serve tier's crash-safety substrate.

A :class:`JobStore` persists every job twice over, under one state
directory::

    <root>/jobs/<job_id>/record.json     the job envelope + request payload
    <root>/jobs/<job_id>/events.ndjson   append-only event log, one
                                         ProgressEvent payload per line

**Crash model.** The process can die at any instruction (kill -9, OOM,
power loss); the filesystem preserves whatever was fsynced and may leave
a *torn final line* on the event log (a partial write). The store is
built so that every reachable on-disk state recovers:

* Records are written atomically — writer-unique temp file, fsync, then
  ``os.replace`` — so ``record.json`` is always either the old or the new
  envelope, never a hybrid.
* The event log is append-only NDJSON. The reader keeps the longest
  *gapless* ``seq`` prefix of intact lines and drops the rest: a torn
  final line (no trailing newline, or unparseable JSON) truncates there,
  and so would any deeper corruption. Re-opening for append repairs the
  file to that prefix first, so new events never concatenate onto a torn
  tail.
* Ordering invariant (kept by the manager's persistence sink): the event
  describing a state change is appended — and fsynced — *before* the
  record carrying that state is replaced. A crash between the two leaves
  the log ahead of the record, never behind; recovery trusts the record's
  state and the log's events.

**Fsync policy.** ``"state"`` lifecycle events and record replacement
fsync immediately — losing a terminal transition would resurrect a
finished job. High-rate progress events (``cell``/``solve``/``chain``)
batch: an append fsyncs when :attr:`JobStore.fsync_batch` lines or
:attr:`JobStore.fsync_interval_s` seconds have accumulated. A crash can
therefore lose at most one batch window of *progress telemetry*; the
cells those events described are separately durable in the
:class:`~repro.explore.cache.ResultCache`, so recovery re-serves them
from the cache rather than re-solving. Fsync latency is observed in the
``repro_store_fsync_seconds`` histogram.

Fault-injection points (:mod:`repro.serve.faults`): ``store.record.before``
/ ``store.record.after`` around record persistence, ``store.events.before``
/ ``store.events.after`` around appends, ``store.fsync`` before each fsync.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_logger
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.serve import faults
from repro.utils.errors import ConfigurationError

_log = get_logger("serve.store")

#: On-disk record schema version (guards the envelope wrapper layout).
STORE_VERSION = 1


def _fsync_histogram():
    return obs_metrics.get_registry().histogram(
        obs_names.STORE_FSYNC_SECONDS,
        "JobStore fsync latency (event-log batches and record replaces).",
    )


def register_durability_families(registry) -> None:
    """Pre-register the durability families so scrapes show them at zero.

    These families fire rarely (recovery after a crash, transient
    retries, fsyncs only with a state dir) — without pre-registration a
    healthy server's scrape would omit them entirely and the obs-smoke
    assertion could not tell "never needed" from "renamed away".
    Creating the default series renders an explicit zero.
    """
    registry.counter(
        obs_names.JOBS_RECOVERED,
        "Unfinished jobs re-enqueued by the startup recovery pass.",
    ).labels()
    registry.counter(
        obs_names.JOB_RETRIES,
        "Transient-failure retries (job requeues and chain requeues).",
    ).labels()
    registry.histogram(
        obs_names.STORE_FSYNC_SECONDS,
        "JobStore fsync latency (event-log batches and record replaces).",
    ).labels()
    registry.counter(
        obs_names.CACHE_CORRUPT,
        "Corrupt/truncated ResultCache disk entries quarantined.",
    ).labels()
    registry.counter(
        obs_names.STORE_ORPHANS,
        "Job directories without an intact record skipped by load().",
    ).labels()
    registry.counter(
        obs_names.CACHE_PEER_HITS,
        "Disk-tier cache hits on entries written by another process.",
    ).labels()


def intact_event_prefix(data: bytes) -> tuple[list[dict], int]:
    """The longest gapless event prefix of raw log bytes.

    Returns ``(payloads, offset)`` where ``payloads`` are the parsed
    event dicts of every intact, newline-terminated line whose ``seq``
    continues the gapless ``0, 1, 2, …`` prefix, and ``offset`` is the
    byte length of that prefix (the truncation point for repair). A torn
    final line, an unparseable line, or a sequence gap all end the
    prefix — everything at and past the first defect is dropped, which
    is exactly the replay guarantee the property tests pin: *any* byte
    truncation of a log replays to a gapless prefix of the original.
    """
    payloads: list[dict] = []
    offset = 0
    expected_seq = 0
    while True:
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail (no terminator) — or clean EOF
        line = data[offset:newline].strip()
        if line:
            try:
                payload = json.loads(line)
                seq = payload["seq"]
            except (ValueError, KeyError, TypeError):
                break
            if not isinstance(payload, dict) or seq != expected_seq:
                break
            payloads.append(payload)
            expected_seq += 1
        offset = newline + 1
    return payloads, offset


@dataclass
class StoredJob:
    """One job as recovered from disk: its record payload and event log."""

    job_id: str
    record: dict
    events: list[dict] = field(default_factory=list)

    @property
    def created_at(self) -> float:
        try:
            return float(self.record["job"]["created_at"])
        except (KeyError, TypeError, ValueError):
            return 0.0


class _EventLog:
    """One job's append handle, with batched fsync."""

    def __init__(self, path: Path, batch: int, interval_s: float):
        self._path = path
        self._batch = batch
        self._interval_s = interval_s
        self._pending = 0
        self._last_sync = time.monotonic()
        # Repair before the first append: a torn tail left by a crash
        # must not become the prefix of the next line.
        if path.exists():
            _, offset = intact_event_prefix(path.read_bytes())
            if offset != path.stat().st_size:
                with open(path, "r+b") as fh:
                    fh.truncate(offset)
        self._fh = open(path, "ab")

    def append(self, payload: dict, durable: bool) -> None:
        line = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self._fh.write(line)
        self._fh.flush()  # visible to same-process readers immediately
        self._pending += 1
        now = time.monotonic()
        if (
            durable
            or self._pending >= self._batch
            or now - self._last_sync >= self._interval_s
        ):
            self.sync()

    def sync(self) -> None:
        if self._pending == 0:
            return
        faults.fire("store.fsync")
        began = time.perf_counter()
        os.fsync(self._fh.fileno())
        _fsync_histogram().observe(time.perf_counter() - began)
        self._pending = 0
        self._last_sync = time.monotonic()

    def close(self) -> None:
        try:
            self.sync()
        finally:
            self._fh.close()


class JobStore:
    """Durable job state under one directory (``repro serve --state-dir``).

    Thread-safe: appends and record writes from concurrent job workers
    serialize on one store lock (the job layer already serializes per-job
    mutation on each record's condition; the store lock additionally
    orders cross-job disk traffic).

    Args:
        root: The state directory; created (with ``jobs/``) if missing.
        fsync_batch: Progress-event appends per fsync (``"state"`` events
            always fsync immediately).
        fsync_interval_s: Max seconds between fsyncs while events flow.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        fsync_batch: int = 16,
        fsync_interval_s: float = 0.05,
    ):
        if fsync_batch < 1:
            raise ConfigurationError(
                f"fsync_batch must be >= 1, got {fsync_batch}"
            )
        if fsync_interval_s < 0:
            raise ConfigurationError(
                f"fsync_interval_s must be >= 0, got {fsync_interval_s}"
            )
        self.fsync_batch = fsync_batch
        self.fsync_interval_s = fsync_interval_s
        self._root = Path(root)
        self._jobs_dir = self._root / "jobs"
        try:
            self._jobs_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create state directory {self._root}: {exc}"
            ) from exc
        self._lock = threading.Lock()
        self._logs: dict[str, _EventLog] = {}
        self._closed = False
        #: Cumulative orphan directories skipped by :meth:`load`.
        self.orphans_skipped = 0

    @property
    def root(self) -> Path:
        return self._root

    @property
    def jobs_dir(self) -> Path:
        """The ``jobs/`` directory (fleet leases live inside it)."""
        return self._jobs_dir

    def job_ids(self) -> list[str]:
        """Every job directory name, sorted — the fleet scan's worklist."""
        try:
            return sorted(
                entry.name for entry in self._jobs_dir.iterdir()
                if entry.is_dir()
            )
        except OSError:
            return []

    def job_dir(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id in (".", ".."):
            raise ConfigurationError(f"invalid job id {job_id!r}")
        return self._jobs_dir / job_id

    # -- writes --------------------------------------------------------------

    def save_record(self, job_id: str, payload: dict) -> None:
        """Atomically persist one job's record envelope.

        Temp-write + fsync + ``os.replace`` + directory fsync: after this
        returns, the record survives power loss; at any instant during
        it, ``record.json`` is the old or the new envelope in full.
        """
        faults.fire("store.record.before")
        job_dir = self.job_dir(job_id)
        path = job_dir / "record.json"
        tmp = path.with_name(
            f"record.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with self._lock:
            job_dir.mkdir(parents=True, exist_ok=True)
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, sort_keys=True)
                    fh.flush()
                    faults.fire("store.fsync")
                    began = time.perf_counter()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
                dir_fd = os.open(job_dir, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
                _fsync_histogram().observe(time.perf_counter() - began)
            except OSError as exc:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise ConfigurationError(
                    f"cannot persist job record {path}: {exc}"
                ) from exc
        faults.fire("store.record.after")

    def append_event(self, job_id: str, payload: dict, durable: bool = False) -> None:
        """Append one event payload to the job's log.

        ``durable=True`` (lifecycle state events) fsyncs before
        returning; otherwise the append joins the current fsync batch.
        """
        faults.fire("store.events.before")
        with self._lock:
            self._log(job_id).append(payload, durable=durable)
        faults.fire("store.events.after")

    def _log(self, job_id: str) -> _EventLog:
        """The append handle for one job. Caller holds the store lock."""
        log = self._logs.get(job_id)
        if log is None:
            job_dir = self.job_dir(job_id)
            job_dir.mkdir(parents=True, exist_ok=True)
            log = _EventLog(
                job_dir / "events.ndjson",
                self.fsync_batch,
                self.fsync_interval_s,
            )
            self._logs[job_id] = log
        return log

    def sync(self, job_id: str | None = None) -> None:
        """Force-fsync pending event batches (one job, or all)."""
        with self._lock:
            logs = (
                [self._logs[job_id]] if job_id is not None
                and job_id in self._logs else
                list(self._logs.values()) if job_id is None else []
            )
            for log in logs:
                log.sync()

    def delete(self, job_id: str) -> None:
        """Drop one job's durable state (table eviction follows it here)."""
        with self._lock:
            log = self._logs.pop(job_id, None)
            if log is not None:
                try:
                    log.close()
                except OSError:
                    pass
            job_dir = self.job_dir(job_id)
            for name in ("events.ndjson", "record.json"):
                try:
                    (job_dir / name).unlink()
                except OSError:
                    pass
            # Stray temp files from interrupted record writes, plus any
            # fleet lease (and steal debris) the owner left behind.
            try:
                for pattern in ("record.*.tmp", "lease.json", "lease.steal.*"):
                    for stray in job_dir.glob(pattern):
                        stray.unlink()
                job_dir.rmdir()
            except OSError:
                pass

    # -- reads ---------------------------------------------------------------

    def read_record(self, job_id: str) -> dict | None:
        """The persisted record envelope, or ``None`` when absent/corrupt."""
        path = self.job_dir(job_id) / "record.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("store_version") != STORE_VERSION
        ):
            return None
        return payload

    def read_events(self, job_id: str, after: int = 0) -> list[dict]:
        """Replayable event payloads with ``seq >= after``.

        Reads the gapless intact prefix only (see
        :func:`intact_event_prefix`); never raises on torn or corrupt
        tails. Pending batched appends from this process are flushed
        first, so a live server's reads see everything it wrote.
        """
        path = self.job_dir(job_id) / "events.ndjson"
        try:
            data = path.read_bytes()
        except OSError:
            return []
        payloads, _ = intact_event_prefix(data)
        after = max(0, int(after))
        return [payload for payload in payloads if payload["seq"] >= after]

    def load(self) -> list[StoredJob]:
        """Every persisted job, oldest first — the recovery pass's input.

        A job directory without an intact ``record.json`` is skipped: the
        record is written (and fsynced) before submission returns, so an
        orphan means the crash hit mid-submit and no client ever saw the
        job id. Skips are not silent — each logs a structured WARNING and
        counts in ``repro_store_orphans_total`` (and the cumulative
        :attr:`orphans_skipped`), so a fleet operator can see state-dir
        skew instead of wondering where a directory went. Event logs are
        repaired (torn tails truncated) as a side effect of replay.
        """
        jobs = []
        try:
            entries = sorted(self._jobs_dir.iterdir())
        except OSError:
            return []
        for entry in entries:
            if not entry.is_dir():
                continue
            record = self.read_record(entry.name)
            if record is None:
                self.orphans_skipped += 1
                _log.warning(
                    "skipping orphan job directory (no intact record.json)",
                    extra={"fields": {"path": str(entry)}},
                )
                obs_metrics.get_registry().counter(
                    obs_names.STORE_ORPHANS,
                    "Job directories without an intact record skipped "
                    "by load().",
                ).inc()
                continue
            jobs.append(
                StoredJob(
                    job_id=entry.name,
                    record=record,
                    events=self.read_events(entry.name),
                )
            )
        jobs.sort(key=lambda job: (job.created_at, job.job_id))
        return jobs

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close every open event log."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for log in self._logs.values():
                try:
                    log.close()
                except OSError:
                    pass
            self._logs.clear()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Asynchronous job-oriented serving over :class:`~repro.api.service.LibraService`.

PR 3 made the whole problem statement a value (``Scenario`` →
``OptimizeRequest`` / ``BatchRequest``); this package makes the *execution*
a value too. Instead of one blocking ``submit()`` call, work becomes a
**job** with a typed lifecycle (``queued → running → done/failed/
cancelled``), a content-derived id, a structured event stream, and
cooperative cancellation — the shape long-running topology searches
(LIBRA fig-13-style sweeps are hundreds of solver cells) actually need.

Layers, bottom-up:

* :mod:`repro.serve.events` — :class:`ProgressEvent`, the per-job stream.
* :mod:`repro.serve.jobs` — lifecycle states, the v3 job envelope,
  :class:`JobHandle` (await / stream / cancel) and :class:`JobInfo`.
* :mod:`repro.serve.manager` — :class:`JobManager`, the bounded worker
  pool over one thread-safe service.
* :mod:`repro.serve.http` — the dependency-free HTTP front end
  (``repro serve``; ``POST /v3/jobs`` etc.).
* :mod:`repro.serve.client` — :class:`ServeClient`, the stdlib client the
  ``repro submit`` / ``repro jobs`` CLI modes drive.
* :mod:`repro.serve.store` — :class:`JobStore`, the crash-safe on-disk
  job store behind ``repro serve --state-dir`` (restart recovery).
* :mod:`repro.serve.faults` — deterministic fault injection
  (``REPRO_FAULTS``) the durability tests drive.
* :mod:`repro.serve.fleet` — lease-based multi-server coordination
  (``repro serve --fleet``): N processes share one state dir, each job
  runs on exactly one of them, and dead members' jobs are reclaimed.

In-process, queued, and remote execution accept identical request
payloads, so the same scenario file drives all three.
"""

from repro.serve.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, ProgressEvent
from repro.serve.jobs import (
    TERMINAL_STATES,
    JobHandle,
    JobInfo,
    JobState,
    derive_job_id,
    job_content_key,
)
from repro.serve.fleet import FleetCoordinator, LeaseStore
from repro.serve.manager import JobManager
from repro.serve.store import JobStore
from repro.serve.http import ServeServer, create_server
from repro.serve.client import ServeClient, ServeClientError

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "FleetCoordinator",
    "JobHandle",
    "JobInfo",
    "JobManager",
    "JobState",
    "JobStore",
    "LeaseStore",
    "ProgressEvent",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "TERMINAL_STATES",
    "create_server",
    "derive_job_id",
    "job_content_key",
]

"""Network cost estimation (Sec. IV-D, Fig. 12).

Cost is linear in the bandwidth vector. For each dimension, the per-NPU
hardware purchased per GB/s of dimension bandwidth is:

* one link share (``link`` $/GBps) — ring and FC NPUs split their dimension
  bandwidth across ports, so total link capacity bought per NPU equals the
  dimension bandwidth regardless of topology;
* one switch-port share (``switch`` $/GBps) if the dimension is a Switch —
  a radix-``k`` switch serving ``k`` NPUs at ``b`` GB/s costs
  ``switch · k · b``, i.e. ``switch · b`` per NPU;
* one NIC share (``nic`` $/GBps) at NIC-bearing tiers (inter-Pod).

Worked example (Fig. 12): 3 NPUs behind one inter-Pod switch at 10 GB/s →
links ``$7.8 × 10 × 3 = $234``, switch ``$18 × 3 × 10 = $540``, NICs
``$31.6 × 10 × 3 = $948`` — total **$1,722**, reproduced by the test suite.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cost.model import CostModel
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError
from repro.utils.units import GBPS


@dataclass(frozen=True)
class DimCostBreakdown:
    """Dollar cost of one dimension, split by component class."""

    dim: int
    link: float
    switch: float
    nic: float

    @property
    def total(self) -> float:
        return self.link + self.switch + self.nic


def dim_cost_rate(network: MultiDimNetwork, dim: int, cost_model: CostModel) -> float:
    """$ per (byte/s of per-NPU bandwidth) for dimension ``dim``, per NPU.

    This is the linear coefficient the optimizer uses: network cost is
    ``num_npus · Σ_i rate_i · B_i`` with ``B`` in bytes/s.
    """
    if not 0 <= dim < network.num_dims:
        raise ConfigurationError(f"dimension {dim} out of range for {network.num_dims}D network")
    block = network.blocks[dim]
    tier = network.tiers[dim]
    dollars_per_gbps = cost_model.link_cost(tier)
    if block.uses_switch:
        dollars_per_gbps += cost_model.switch_cost(tier)
    dollars_per_gbps += cost_model.nic_cost(tier)
    return dollars_per_gbps / GBPS


def cost_rates(network: MultiDimNetwork, cost_model: CostModel) -> tuple[float, ...]:
    """Per-dimension linear cost coefficients ($ per byte/s per NPU)."""
    return tuple(dim_cost_rate(network, dim, cost_model) for dim in range(network.num_dims))


def network_cost(
    network: MultiDimNetwork,
    bandwidths: Sequence[float],
    cost_model: CostModel,
) -> float:
    """Total network dollar cost for per-NPU ``bandwidths`` (bytes/s)."""
    breakdown = cost_breakdown(network, bandwidths, cost_model)
    return sum(entry.total for entry in breakdown)


def cost_breakdown(
    network: MultiDimNetwork,
    bandwidths: Sequence[float],
    cost_model: CostModel,
) -> list[DimCostBreakdown]:
    """Per-dimension, per-component dollar cost (the Fig. 12 line items)."""
    if len(bandwidths) != network.num_dims:
        raise ConfigurationError(
            f"expected {network.num_dims} bandwidths, got {len(bandwidths)}"
        )
    entries = []
    for dim, bandwidth in enumerate(bandwidths):
        if bandwidth < 0:
            raise ConfigurationError(f"bandwidth of dim {dim} must be >= 0, got {bandwidth}")
        block = network.blocks[dim]
        tier = network.tiers[dim]
        gbps_per_npu = bandwidth / GBPS
        scale = network.num_npus * gbps_per_npu
        link = cost_model.link_cost(tier) * scale
        switch = cost_model.switch_cost(tier) * scale if block.uses_switch else 0.0
        nic = cost_model.nic_cost(tier) * scale
        entries.append(DimCostBreakdown(dim=dim, link=link, switch=switch, nic=nic))
    return entries


def max_bandwidth_for_budget(
    network: MultiDimNetwork,
    shares: Sequence[float],
    budget_dollars: float,
    cost_model: CostModel,
) -> float:
    """Total per-NPU bandwidth achievable for ``budget_dollars``.

    Given an allocation *shape* (``shares`` summing to 1 across dimensions),
    returns the total bandwidth ``B`` such that the network with per-dim
    bandwidths ``shares_i · B`` costs exactly the budget. Used by the
    iso-cost Themis study (Sec. VI-D), where the LIBRA-shaped network affords
    5.05× more bandwidth than EqualBW at equal dollars.
    """
    if budget_dollars <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget_dollars}")
    if len(shares) != network.num_dims:
        raise ConfigurationError(f"expected {network.num_dims} shares, got {len(shares)}")
    share_sum = sum(shares)
    if share_sum <= 0:
        raise ConfigurationError("shares must sum to a positive value")
    normalized = [share / share_sum for share in shares]
    rates = cost_rates(network, cost_model)
    dollars_per_unit_total = network.num_npus * sum(
        rate * share for rate, share in zip(rates, normalized)
    )
    if dollars_per_unit_total <= 0:
        raise ConfigurationError("cost rates are all zero; cannot size a budget")
    return budget_dollars / dollars_per_unit_total

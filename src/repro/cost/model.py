"""Network dollar-cost model (Table I, Sec. IV-D).

The cost model prices three component classes — Link, Switch, NIC — in
$/GBps, per physical tier (inter-Chiplet / Package / Node / Pod). It is a
*user input* to LIBRA: technology costs shift over time, so the framework
treats the table as data. The default table uses the lowest value of each
Table I entry, exactly as the paper's evaluation does.

Conventions baked into the default model (Sec. IV-D):

* Only the inter-Pod (scale-out) tier uses NICs.
* Inter-Chiplet networks are peer-to-peer only — no switches — so a Switch
  dimension at the Chiplet tier is priced as a configuration error rather
  than silently given a made-up cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.topology.network import NetworkTier
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class TierCost:
    """Component prices for one tier, in $/GBps.

    ``None`` marks a component unavailable at this tier (e.g. Chiplet
    switches); pricing a dimension that needs an unavailable component is a
    configuration error.
    """

    link: float
    switch: float | None = None
    nic: float | None = None

    def __post_init__(self) -> None:
        for name, value in (("link", self.link), ("switch", self.switch), ("nic", self.nic)):
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} cost must be >= 0, got {value}")


@dataclass(frozen=True)
class CostModel:
    """$/GBps prices per tier plus lookup helpers.

    Attributes:
        tiers: Price table keyed by :class:`NetworkTier`.
        name: Label for reports.
    """

    tiers: dict[NetworkTier, TierCost] = field(default_factory=dict)
    name: str = "custom"

    def tier_cost(self, tier: NetworkTier) -> TierCost:
        """Prices for ``tier``; raises if the model does not cover it."""
        try:
            return self.tiers[tier]
        except KeyError:
            raise ConfigurationError(
                f"cost model {self.name!r} has no prices for tier {tier.value!r}"
            ) from None

    def link_cost(self, tier: NetworkTier) -> float:
        """Link $/GBps at ``tier``."""
        return self.tier_cost(tier).link

    def switch_cost(self, tier: NetworkTier) -> float:
        """Switch $/GBps at ``tier``; raises if switches are unavailable."""
        cost = self.tier_cost(tier).switch
        if cost is None:
            raise ConfigurationError(
                f"tier {tier.value!r} does not support switches in cost model {self.name!r} "
                "(inter-Chiplet networks are peer-to-peer only)"
            )
        return cost

    def nic_cost(self, tier: NetworkTier) -> float:
        """NIC $/GBps at ``tier``; 0.0 for tiers that do not use NICs."""
        cost = self.tier_cost(tier).nic
        return 0.0 if cost is None else cost

    def canonical(self) -> dict:
        """Content-identity payload for hashing and result caching.

        The display ``name`` is excluded: a renamed table with identical
        prices is the same cost model.
        """
        return {
            "tiers": {
                tier.value: [cost.link, cost.switch, cost.nic]
                for tier, cost in sorted(
                    self.tiers.items(), key=lambda item: item[0].value
                )
            }
        }

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Unlike :meth:`canonical` this keeps the display ``name``, so a
        round-tripped model reports identically.
        """
        return {
            "name": self.name,
            "tiers": {
                tier.value: {
                    "link": cost.link,
                    "switch": cost.switch,
                    "nic": cost.nic,
                }
                for tier, cost in sorted(
                    self.tiers.items(), key=lambda item: item[0].value
                )
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        """Rebuild a cost model from :meth:`to_dict` output."""
        try:
            tiers = {}
            for tier_name, prices in payload["tiers"].items():
                tier = NetworkTier(tier_name)
                tiers[tier] = TierCost(
                    link=float(prices["link"]),
                    switch=(
                        None if prices.get("switch") is None
                        else float(prices["switch"])
                    ),
                    nic=None if prices.get("nic") is None else float(prices["nic"]),
                )
            return cls(tiers=tiers, name=str(payload.get("name", "custom")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed cost-model payload: {exc}") from exc

    def with_link_cost(self, tier: NetworkTier, link: float) -> "CostModel":
        """Copy with one tier's link price replaced (Fig. 18's sweep knob)."""
        if link < 0:
            raise ConfigurationError(f"link cost must be >= 0, got {link}")
        new_tiers = dict(self.tiers)
        new_tiers[tier] = replace(self.tier_cost(tier), link=link)
        return CostModel(tiers=new_tiers, name=f"{self.name}[{tier.value}.link={link}]")


def default_cost_model() -> CostModel:
    """The paper's default cost model: lowest value of each Table I entry.

    ======== ===== ====== =====
    tier     link  switch NIC
    ======== ===== ====== =====
    Chiplet  2.0   —      —
    Package  4.0   13.0   —
    Node     4.0   13.0   —
    Pod      7.8   18.0   31.6
    ======== ===== ====== =====
    """
    return CostModel(
        tiers={
            NetworkTier.CHIPLET: TierCost(link=2.0),
            NetworkTier.PACKAGE: TierCost(link=4.0, switch=13.0),
            NetworkTier.NODE: TierCost(link=4.0, switch=13.0),
            NetworkTier.POD: TierCost(link=7.8, switch=18.0, nic=31.6),
        },
        name="table1-default",
    )

"""Network dollar-cost modeling (paper Sec. IV-D, Table I, Fig. 12).

Public surface:

* :class:`CostModel` / :class:`TierCost` / :func:`default_cost_model` — the
  Table I price table (a user-supplied input to LIBRA).
* :func:`network_cost` / :func:`cost_breakdown` — dollar cost of a
  bandwidth configuration.
* :func:`cost_rates` — the linear coefficients the optimizer consumes.
* :func:`max_bandwidth_for_budget` — iso-cost sizing (Fig. 19).
"""

from repro.cost.estimator import (
    DimCostBreakdown,
    cost_breakdown,
    cost_rates,
    dim_cost_rate,
    max_bandwidth_for_budget,
    network_cost,
)
from repro.cost.model import CostModel, TierCost, default_cost_model

__all__ = [
    "DimCostBreakdown",
    "cost_breakdown",
    "cost_rates",
    "dim_cost_rate",
    "max_bandwidth_for_budget",
    "network_cost",
    "CostModel",
    "TierCost",
    "default_cost_model",
]

"""Runtime optimizers that complement design-time bandwidth allocation.

The paper pairs LIBRA with two runtime techniques (Sec. VI-D):

* :class:`ThemisScheduler` — bandwidth-aware dynamic chunk scheduling
  (Fig. 19), plugged into the chunk-level simulator.
* :func:`synthesize_all_gather` — TACOS-style topology-aware collective
  synthesis on the physical link graph (Fig. 20).
"""

from repro.runtime.tacos import (
    SynthesizedCollective,
    TacosCoDesign,
    Transfer,
    cooptimize_with_tacos,
    multirail_all_reduce_time,
    synthesize_all_gather,
)
from repro.runtime.themis import ThemisScheduler, themis_scheduler_factory

__all__ = [
    "SynthesizedCollective",
    "TacosCoDesign",
    "cooptimize_with_tacos",
    "Transfer",
    "multirail_all_reduce_time",
    "synthesize_all_gather",
    "ThemisScheduler",
    "themis_scheduler_factory",
]

"""TACOS-style topology-aware collective synthesizer (Sec. VI-D, [63]).

TACOS synthesizes collective algorithms directly on the physical link graph
(rather than composing per-dimension unit algorithms the multi-rail way), by
matching chunks to links over a time-expanded view of the topology. This
module implements that search family as a continuous-time greedy matcher:

* Every NPU starts with its shard of the payload, split into chunks.
* Whenever a directed link is free and its source holds a chunk its
  destination still lacks, the link transfers one — preferring the *rarest*
  chunk system-wide (the classic gossip heuristic the time-expanded matching
  approximates), tie-breaking deterministically.
* The synthesized All-Gather finishes when every NPU holds every chunk;
  Reduce-Scatter is its time-mirror (same makespan, reductions instead of
  copies), so an All-Reduce costs two passes.

Because the matcher works on the link graph, it exploits *all* dimensions
concurrently — unlike the staged multi-rail algorithm — which is exactly why
TACOS helps EqualBW tori, and why pairing it with LIBRA's bandwidth shaping
compounds the benefit (Fig. 20).

Switch dimensions are intentionally unsupported: the paper's TACOS study
runs on the 3D-Torus (``RI(4)_RI(4)_RI(4)``), and store-and-forward hubs
would need a different data model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.topology.graph import build_graph
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class Transfer:
    """One scheduled chunk transfer in the synthesized algorithm."""

    chunk: int
    src: int
    dst: int
    start: float
    finish: float


@dataclass(frozen=True)
class SynthesizedCollective:
    """A synthesized All-Gather schedule and its derived collective times.

    Attributes:
        makespan: All-Gather completion time, seconds.
        transfers: Every link-level transfer, in start-time order.
        num_chunks_total: Chunk count across all NPUs.
    """

    makespan: float
    transfers: tuple[Transfer, ...]
    num_chunks_total: int

    @property
    def all_gather_time(self) -> float:
        return self.makespan

    @property
    def reduce_scatter_time(self) -> float:
        """RS is the time-reversed AG with reductions — same makespan."""
        return self.makespan

    @property
    def all_reduce_time(self) -> float:
        """All-Reduce = Reduce-Scatter followed by All-Gather."""
        return 2.0 * self.makespan

    @property
    def link_transfer_count(self) -> int:
        return len(self.transfers)


def synthesize_all_gather(
    network: MultiDimNetwork,
    bandwidths: tuple[float, ...] | list[float],
    collective_bytes: float,
    chunks_per_npu: int = 8,
) -> SynthesizedCollective:
    """Synthesize an All-Gather over the whole network's link graph.

    Args:
        network: Target network; all dimensions must be switchless (Ring or
            FullyConnected), matching the paper's 3D-Torus study.
        bandwidths: Per-NPU per-dimension bandwidth, bytes/s.
        collective_bytes: Total All-Gather payload ``m`` (each NPU starts
            with ``m / num_npus`` and ends with ``m``).
        chunks_per_npu: How many chunks each NPU's shard is split into
            (paper: 8 for the 1 GB study).

    Returns:
        The synthesized schedule.
    """
    if any(block.uses_switch for block in network.blocks):
        raise ConfigurationError(
            "the TACOS synthesizer supports switchless topologies only "
            f"(got {network.notation})"
        )
    if collective_bytes <= 0:
        raise ConfigurationError(f"collective size must be positive, got {collective_bytes}")
    if chunks_per_npu < 1:
        raise ConfigurationError(f"chunks_per_npu must be >= 1, got {chunks_per_npu}")

    graph = build_graph(network, bandwidths)
    num_npus = network.num_npus
    num_chunks = num_npus * chunks_per_npu
    chunk_bytes = collective_bytes / num_chunks

    # have[npu] = set of chunks held; chunk k starts at NPU k // chunks_per_npu.
    have: list[set[int]] = [set() for _ in range(num_npus)]
    holder_count = [0] * num_chunks
    for chunk in range(num_chunks):
        origin = chunk // chunks_per_npu
        have[origin].add(chunk)
        holder_count[chunk] = 1

    inflight: list[set[int]] = [set() for _ in range(num_npus)]
    links = [
        (int(u), int(v), float(data["bandwidth"]))
        for u, v, data in graph.edges(data=True)
    ]
    out_links: dict[int, list[int]] = {npu: [] for npu in range(num_npus)}
    in_links: dict[int, list[int]] = {npu: [] for npu in range(num_npus)}
    for index, (u, v, _bw) in enumerate(links):
        out_links[u].append(index)
        in_links[v].append(index)
    link_free = [True] * len(links)

    transfers: list[Transfer] = []
    heap: list[tuple[float, int, int, int]] = []  # (finish, seq, link, chunk)
    sequence = itertools.count()
    remaining = num_chunks * num_npus - num_chunks  # deliveries still needed

    # In-neighbour sources per NPU, fastest link first — the deferral rule
    # below only walks the strictly-faster prefix, so uniform-bandwidth
    # networks pay nothing for it.
    in_sources: dict[int, list[tuple[float, int]]] = {
        npu: sorted(
            ((links[index][2], links[index][0]) for index in in_links[npu]),
            reverse=True,
        )
        for npu in range(num_npus)
    }

    def faster_source_exists(chunk: int, dst: int, link_bw: float) -> bool:
        """True when ``dst`` can expect ``chunk`` over a strictly faster link.

        On bandwidth-skewed networks (LIBRA-shaped tori) this deferral rule
        is what keeps slow outer-dimension links from redundantly importing
        chunks that a fast inner-dimension neighbour already holds or is
        about to receive — the greedy stays near the relay-based schedules
        real TACOS synthesizes.
        """
        for other_bw, other_src in in_sources[dst]:
            if other_bw <= link_bw:
                return False
            if chunk in have[other_src] or chunk in inflight[other_src]:
                return True
        return False

    def pick_chunk(src: int, dst: int, link_index: int, link_bw: float) -> int | None:
        """Rarest chunk ``src`` can usefully send to ``dst`` (None if none).

        Rarity ties break by a per-link rotation rather than by chunk id:
        with a global tie-break every importer of a region would fetch the
        *same* rarest chunk at the same instant, multiplying redundant
        transfers over the slowest links. The rotation keeps the choice
        deterministic while spreading concurrent imports across chunks.
        """
        candidates = have[src] - have[dst] - inflight[dst]
        if not candidates:
            return None
        usable = [
            chunk for chunk in candidates
            if not faster_source_exists(chunk, dst, link_bw)
        ]
        if not usable:
            return None
        rotation = (link_index * 2654435761) % num_chunks
        return min(
            usable,
            key=lambda chunk: (holder_count[chunk], (chunk + rotation) % num_chunks),
        )

    def try_start(link_index: int, now: float) -> None:
        src, dst, link_bw = links[link_index]
        if not link_free[link_index]:
            return
        chunk = pick_chunk(src, dst, link_index, link_bw)
        if chunk is None:
            return
        link_free[link_index] = False
        inflight[dst].add(chunk)
        finish = now + chunk_bytes / link_bw
        heapq.heappush(heap, (finish, next(sequence), link_index, chunk))
        transfers.append(Transfer(chunk, src, dst, now, finish))

    for link_index in range(len(links)):
        try_start(link_index, 0.0)

    makespan = 0.0
    while heap:
        now, _, link_index, chunk = heapq.heappop(heap)
        src, dst, _bw = links[link_index]
        inflight[dst].discard(chunk)
        have[dst].add(chunk)
        holder_count[chunk] += 1
        remaining -= 1
        makespan = now
        link_free[link_index] = True
        # The freed link may have more to send; the destination can now
        # forward its new chunk on every idle outgoing link (which is also
        # what releases transfers the deferral rule was holding back).
        try_start(link_index, now)
        for neighbor_link in out_links[dst]:
            try_start(neighbor_link, now)

    if remaining != 0:
        raise SimulationError(
            f"synthesis finished with {remaining} undelivered chunk copies "
            "(disconnected topology?)"
        )
    transfers.sort(key=lambda t: (t.start, t.finish, t.chunk))
    return SynthesizedCollective(
        makespan=makespan,
        transfers=tuple(transfers),
        num_chunks_total=num_chunks,
    )


@dataclass(frozen=True)
class TacosCoDesign:
    """Outcome of co-optimizing bandwidth allocation with the synthesizer.

    Attributes:
        bandwidths: Chosen per-dim bandwidths, bytes/s.
        all_reduce_time: Synthesized All-Reduce seconds at that allocation.
        network_cost: Dollar cost of the allocation.
        evaluated: Every (bandwidths, time, cost) candidate examined.
    """

    bandwidths: tuple[float, ...]
    all_reduce_time: float
    network_cost: float
    evaluated: tuple[tuple[tuple[float, ...], float, float], ...]


def cooptimize_with_tacos(
    network: MultiDimNetwork,
    total_bandwidth: float,
    collective_bytes: float,
    chunks_per_npu: int = 8,
    objective: str = "perf_per_cost",
    skew_levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> TacosCoDesign:
    """LIBRA + TACOS co-design (Fig. 20): search allocations with the
    synthesizer in the loop.

    The multi-rail traffic model does not describe TACOS execution — the
    synthesizer routes adaptively, so its per-dimension load follows the
    allocation rather than the staged formulas. LIBRA therefore evaluates a
    small family of allocations (interpolating from EqualBW toward a
    cheap-inner-dimension skew) by synthesizing the collective on each, and
    picks the best under the requested objective. Because EqualBW is always
    in the family, the co-design never loses to TACOS-only.

    Args:
        objective: ``"perf"`` (minimize time) or ``"perf_per_cost"``
            (minimize time × dollar cost).
    """
    from repro.cost.estimator import network_cost as price
    from repro.cost.model import default_cost_model

    if objective not in ("perf", "perf_per_cost"):
        raise ConfigurationError(f"unknown objective {objective!r}")
    cost_model = default_cost_model()
    num_dims = network.num_dims
    equal_shares = [1.0 / num_dims] * num_dims
    # The skew target keeps every dimension above the connectivity floor
    # (a chunk still needs (e_d − 1) hops per dimension) while shifting the
    # budget toward the cheaper inner dimensions.
    skew_target = _cheap_skew_shares(network)

    evaluated = []
    best = None
    for alpha in skew_levels:
        shares = [
            (1 - alpha) * equal + alpha * skew
            for equal, skew in zip(equal_shares, skew_target)
        ]
        bandwidths = tuple(total_bandwidth * share for share in shares)
        result = synthesize_all_gather(
            network, list(bandwidths), collective_bytes, chunks_per_npu
        )
        time = result.all_reduce_time
        dollars = price(network, list(bandwidths), cost_model)
        evaluated.append((bandwidths, time, dollars))
        score = time if objective == "perf" else time * dollars
        if best is None or score < best[0]:
            best = (score, bandwidths, time, dollars)

    assert best is not None
    _, bandwidths, time, dollars = best
    return TacosCoDesign(
        bandwidths=bandwidths,
        all_reduce_time=time,
        network_cost=dollars,
        evaluated=tuple(evaluated),
    )


def _cheap_skew_shares(network: MultiDimNetwork) -> list[float]:
    """A cost-leaning share vector: 70/20/10-style, inner dimensions first."""
    num_dims = network.num_dims
    raw = [2.0 ** (num_dims - 1 - dim) for dim in range(num_dims)]
    # Temper the geometric decay so no dimension drops below ~10% of budget.
    floor = 0.1
    total = sum(raw)
    shares = [max(value / total, floor) for value in raw]
    norm = sum(shares)
    return [share / norm for share in shares]


def multirail_all_reduce_time(
    network: MultiDimNetwork,
    bandwidths: tuple[float, ...] | list[float],
    collective_bytes: float,
    num_chunks: int = 8,
) -> float:
    """Baseline for Fig. 20: the staged multi-rail All-Reduce, simulated."""
    from repro.collectives.types import CollectiveOp, CollectiveType, DimSpan
    from repro.simulator.pipeline import simulate_collective

    spans = tuple(
        DimSpan(dim, size) for dim, size in enumerate(network.dim_sizes) if size > 1
    )
    op = CollectiveOp(CollectiveType.ALL_REDUCE, collective_bytes, spans, "fig20-ar")
    return simulate_collective(op, list(bandwidths), num_chunks=num_chunks).finish_time

"""Themis-style bandwidth-aware collective scheduler (Sec. VI-D, [39]).

Themis observes that the canonical multi-rail order (every chunk reduces on
Dim 1 first) underutilizes skewed networks: on an EqualBW fabric the first
dimension saturates while the rest idle (Fig. 9(a)). Its remedy is chunk-
level reordering — different chunks traverse the dimensions in different
orders, trading extra transfer volume on idle dimensions for relief on the
bottleneck.

Reordering is fundamentally a *load transfer*: a chunk that visits an outer
dimension before the inner reductions moves a payload that has not been
shrunk yet — more bytes there, fewer on the dimensions it deferred. Whether
the trade pays depends on relative loads, so :class:`ThemisScheduler` is a
*planner*: before dispatch it assigns every chunk a dimension order by
greedy makespan minimization — each chunk in turn picks the permutation
minimizing the worst projected per-dimension load (backlog + planned
bytes / bandwidth), then commits its volumes. On a traffic-proportional
(LIBRA-optimized) network every deviation inflates some dimension's load,
so the plan degenerates to the canonical order and Themis costs nothing; on
an EqualBW network the plan spreads chunks across orders and recovers most
of the idle bandwidth — matching the paper's finding that runtime
scheduling helps most when the design-time allocation is poor, and that the
two techniques compose (Fig. 19).

Correctness constraints honoured by the plan:

* an All-Reduce chunk's All-Gather half mirrors its own Reduce-Scatter
  order in reverse (the multi-rail value flow requires it), contributing an
  equal second copy of every stage volume;
* pure All-Gathers are order-free and planned directly;
* All-to-All volumes are order-independent, so those keep the canonical
  ascending order.
"""

from __future__ import annotations

import itertools

from repro.collectives.types import CollectiveOp, CollectiveType
from repro.simulator.pipeline import ChunkProgress, ChunkScheduler, DimServer


class ThemisScheduler(ChunkScheduler):
    """Plan-driven per-chunk dimension ordering (greedy makespan balance)."""

    def __init__(self) -> None:
        self._plans: dict[int, list[int]] = {}

    # -- planning --------------------------------------------------------------

    def prepare(
        self,
        op: CollectiveOp,
        num_chunks: int,
        servers: list[DimServer],
        bandwidths: tuple[float, ...],
    ) -> None:
        self._plans = plan_chunk_orders(op, num_chunks, servers, bandwidths)

    # -- dispatch ---------------------------------------------------------------

    def next_span(
        self,
        progress: ChunkProgress,
        now: float,
        servers: list[DimServer],
        bandwidths: tuple[float, ...],
    ) -> int:
        if progress.in_rs_phase:
            plan = self._plans.get(progress.chunk_id)
            if plan is None:
                return min(progress.rs_pending)
            return plan[len(progress.rs_visit_order)]
        if progress.ag_pending:
            plan = self._plans.get(progress.chunk_id)
            if plan is None:
                return max(progress.ag_pending)
            position = len(progress.spans) - len(progress.ag_pending)
            return plan[position]
        return progress.ag_order()[progress.ag_position]


def plan_chunk_orders(
    op: CollectiveOp,
    num_chunks: int,
    servers: list[DimServer],
    bandwidths: tuple[float, ...],
) -> dict[int, list[int]]:
    """Greedy load-balancing assignment of a span order to every chunk.

    Returns an empty dict when reordering cannot help (trivial ops, single
    spans, All-to-All), in which case the scheduler falls back to the
    canonical order.
    """
    num_spans = len(op.spans)
    order_free_kinds = (CollectiveType.ALL_TO_ALL, CollectiveType.POINT_TO_POINT)
    if op.is_trivial or num_spans < 2 or op.kind in order_free_kinds:
        return {}

    chunk_bytes = op.size_bytes / num_chunks
    permutations = list(itertools.permutations(range(num_spans)))
    volume_tables = {
        perm: _per_dim_volumes(op, perm, chunk_bytes) for perm in permutations
    }
    loads = [server.backlog_seconds(0.0) for server in servers]

    plans: dict[int, list[int]] = {}
    for chunk_id in range(num_chunks):
        best_perm = permutations[0]
        best_score = float("inf")
        for perm in permutations:
            worst = 0.0
            for dim, volume in volume_tables[perm].items():
                projected = loads[dim] + volume / servers[dim].bandwidth
                worst = max(worst, projected)
            if worst < best_score - 1e-18:
                best_score = worst
                best_perm = perm
        for dim, volume in volume_tables[best_perm].items():
            loads[dim] += volume / servers[dim].bandwidth
        plans[chunk_id] = list(best_perm)
    return plans


def _per_dim_volumes(
    op: CollectiveOp, perm: tuple[int, ...], chunk_bytes: float
) -> dict[int, float]:
    """Bytes per physical dimension for one chunk under one span order."""
    volumes: dict[int, float] = {}
    if op.kind is CollectiveType.ALL_GATHER:
        payload = chunk_bytes / op.group_size
        for span_index in perm:
            span = op.spans[span_index]
            volumes[span.dim] = volumes.get(span.dim, 0.0) + payload * (span.size - 1)
            payload *= span.size
        return volumes

    # All-Reduce mirrors each RS stage with an equal AG stage (factor 2).
    factor = 2.0 if op.kind is CollectiveType.ALL_REDUCE else 1.0
    payload = chunk_bytes
    for span_index in perm:
        span = op.spans[span_index]
        stage = payload * (span.size - 1) / span.size
        volumes[span.dim] = volumes.get(span.dim, 0.0) + factor * stage
        payload /= span.size
    return volumes


def themis_scheduler_factory() -> ThemisScheduler:
    """Factory suitable for ``simulate_training_step(scheduler_factory=...)``."""
    return ThemisScheduler()

"""The declarative problem statement: a frozen, versioned :class:`Scenario`.

The paper's Fig. 3 pipeline is a pure function from *(workload set, network
shape, training loop, compute model, cost model, constraints, scheme)* to a
design point. A :class:`Scenario` captures everything on the left-hand side
except the scheme as one immutable, serializable value:

* it round-trips through JSON (``to_dict`` / ``from_dict``) under an
  explicit :data:`SCENARIO_SCHEMA_VERSION`,
* it has a content identity (:meth:`Scenario.key`) built from the model
  objects' ``canonical()`` hooks — two scenarios describing the same
  problem hash identically regardless of display names or field order,
* it compiles to a ready :class:`~repro.core.framework.Libra` engine
  (:meth:`Scenario.compile`), which :class:`~repro.api.service.LibraService`
  memoizes on the canonical key.

Typical construction goes through :func:`build_scenario`, which resolves
names through the :mod:`repro.api.registry` plugin point::

    scenario = build_scenario(
        topology="4D-4K",
        workloads=["GPT-3"],
        total_bw_gbps=500,
    )
    save_scenario(scenario, "gpt3.json")
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace

from repro.api.registry import (
    resolve_cost_model,
    resolve_loop,
    resolve_topology,
    resolve_workload,
)
from repro.core.constraints import ConstraintSet
from repro.core.framework import Libra
from repro.cost.model import CostModel, default_cost_model
from repro.topology.network import MultiDimNetwork, NetworkTier
from repro.training.compute import ComputeModel, a100_compute_model
from repro.utils.canonical import digest
from repro.utils.errors import ConfigurationError, ReproError
from repro.utils.units import gbps
from repro.workloads.parser import parse_workload, serialize_workload
from repro.workloads.workload import Workload

#: Bump when the scenario payload layout changes incompatibly. ``from_dict``
#: rejects newer versions with a clear message instead of misparsing them.
SCENARIO_SCHEMA_VERSION = 1


class ScenarioValidationError(ConfigurationError):
    """A scenario payload failed structural validation.

    Attributes:
        path: JSON-path-style location of the offending field
            (e.g. ``"workloads[1].weight"``).
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"scenario payload at {path!r}: {message}")


def _expect(payload: Mapping, key: str, path: str) -> object:
    """Fetch a required field, raising a located validation error."""
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise ScenarioValidationError(
            f"{path}.{key}" if path else key, "required field is missing"
        ) from None


def _expect_mapping(value: object, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScenarioValidationError(
            path, f"expected an object, got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class ScenarioWorkload:
    """One target workload with its group weight and serialization origin.

    Attributes:
        workload: The concrete workload.
        weight: Importance weight in the group objective (Sec. IV-F).
        preset: Registry name this workload was built from; empty for
            custom workloads, which serialize inline in the text format.
    """

    workload: Workload
    weight: float = 1.0
    preset: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"workload weight must be positive, got {self.weight}"
            )

    def to_dict(self) -> dict:
        if self.preset:
            return {"preset": self.preset, "weight": self.weight}
        return {"inline": serialize_workload(self.workload), "weight": self.weight}

    @classmethod
    def from_dict(
        cls, payload: Mapping, num_npus: int, path: str
    ) -> "ScenarioWorkload":
        payload = _expect_mapping(payload, path)
        weight = payload.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or weight <= 0:
            raise ScenarioValidationError(
                f"{path}.weight", f"expected a positive number, got {weight!r}"
            )
        if "preset" in payload:
            name = payload["preset"]
            if not isinstance(name, str):
                raise ScenarioValidationError(
                    f"{path}.preset", "expected a workload name string"
                )
            return cls(
                workload=resolve_workload(name, num_npus),
                weight=float(weight),
                preset=name,
            )
        if "inline" in payload:
            text = payload["inline"]
            if not isinstance(text, str):
                raise ScenarioValidationError(
                    f"{path}.inline", "expected workload text-format string"
                )
            return cls(workload=parse_workload(text), weight=float(weight))
        raise ScenarioValidationError(
            path, "workload entry needs either 'preset' or 'inline'"
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, immutable LIBRA problem statement.

    Attributes:
        network: Target multi-dimensional network shape.
        workloads: Target workloads with weights (at least one).
        constraints: Designer constraint set; ``None`` means the request
            must supply explicit bandwidths (evaluation-only scenarios).
        cost_model: Dollar-cost table; ``None`` means Table I defaults.
        compute_model: NPU compute rate; ``None`` means the paper's A100.
        loop: Training-loop name from the :data:`~repro.api.registry.LOOPS`
            registry (Fig. 5).
        in_network_dims: Dimensions with in-network collective offload.
    """

    network: MultiDimNetwork
    workloads: tuple[ScenarioWorkload, ...]
    constraints: ConstraintSet | None = None
    cost_model: CostModel | None = None
    compute_model: ComputeModel | None = None
    loop: str = "no-overlap"
    in_network_dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(
            self,
            "in_network_dims",
            tuple(sorted(int(d) for d in set(self.in_network_dims))),
        )
        if not self.workloads:
            raise ConfigurationError("scenario needs at least one workload")
        seen: set[str] = set()
        for entry in self.workloads:
            if entry.workload.parallelism.total_npus != self.network.num_npus:
                raise ConfigurationError(
                    f"{entry.workload.name} occupies "
                    f"{entry.workload.parallelism.total_npus} NPUs but the "
                    f"network has {self.network.num_npus}"
                )
            if entry.workload.name in seen:
                raise ConfigurationError(
                    f"workload {entry.workload.name!r} appears twice in scenario"
                )
            seen.add(entry.workload.name)
        if (
            self.constraints is not None
            and self.constraints.num_dims != self.network.num_dims
        ):
            raise ConfigurationError(
                f"constraint set covers {self.constraints.num_dims} dims, "
                f"network has {self.network.num_dims}"
            )
        resolve_loop(self.loop)  # fail fast on unknown loop names
        for dim in self.in_network_dims:
            if not 0 <= dim < self.network.num_dims:
                raise ConfigurationError(
                    f"in-network dim {dim} out of range for "
                    f"{self.network.num_dims}-D network"
                )

    # -- identity ------------------------------------------------------------

    def canonical(self) -> dict:
        """Content-identity payload built from the model ``canonical()`` hooks.

        Display names and serialization provenance (preset vs inline) are
        excluded; anything that changes a solve's answer is included.
        """
        cost_model = self.cost_model or default_cost_model()
        compute_model = self.compute_model or a100_compute_model()
        return {
            "network": self.network.canonical(),
            "workloads": [
                {"workload": entry.workload.canonical(), "weight": entry.weight}
                for entry in self.workloads
            ],
            "constraints": (
                None if self.constraints is None else self.constraints.canonical()
            ),
            "cost_model": cost_model.canonical(),
            "compute_model": {
                "peak_flops": compute_model.peak_flops,
                "efficiency": compute_model.efficiency,
            },
            "loop": self.loop,
            "in_network_dims": list(self.in_network_dims),
        }

    def key(self) -> str:
        """Content address of this scenario (SHA-256 hex)."""
        return digest(self.canonical())

    def engine_key(self) -> str:
        """Content address of the *compiled-engine* inputs.

        :meth:`compile` never reads the constraint set (constraints are
        applied per request at solve time), so the engine memo excludes it —
        every budget cell of a sweep column shares one compiled engine.
        """
        payload = self.canonical()
        del payload["constraints"]
        return digest(payload)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned JSON payload; inverse of :meth:`from_dict`."""
        return {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "network": {
                "notation": self.network.notation,
                "tiers": [tier.value for tier in self.network.tiers],
                "name": self.network.name,
            },
            "workloads": [entry.to_dict() for entry in self.workloads],
            "constraints": (
                None if self.constraints is None else self.constraints.to_dict()
            ),
            "cost_model": (
                None if self.cost_model is None else self.cost_model.to_dict()
            ),
            "compute_model": (
                None if self.compute_model is None else self.compute_model.to_dict()
            ),
            "loop": self.loop,
            "in_network_dims": list(self.in_network_dims),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (or a hand-written
        file using registry-name shorthands for cost/compute models).

        Raises:
            ScenarioValidationError: on structural problems, locating the
                offending field with a JSON-path-style message.
        """
        payload = _expect_mapping(payload, "$")
        version = payload.get("schema_version")
        if version is None:
            raise ScenarioValidationError("schema_version", "required field is missing")
        if version != SCENARIO_SCHEMA_VERSION:
            raise ScenarioValidationError(
                "schema_version",
                f"unsupported version {version!r}; this library reads "
                f"version {SCENARIO_SCHEMA_VERSION}",
            )

        network_payload = _expect_mapping(_expect(payload, "network", ""), "network")
        notation = _expect(network_payload, "notation", "network")
        if not isinstance(notation, str):
            raise ScenarioValidationError("network.notation", "expected a string")
        tier_names = network_payload.get("tiers") or ()
        try:
            tiers = tuple(NetworkTier(name) for name in tier_names)
        except ValueError as exc:
            raise ScenarioValidationError("network.tiers", str(exc)) from None
        try:
            network = MultiDimNetwork.from_notation(
                notation, tiers=tiers or None,
                name=str(network_payload.get("name", "")),
            )
        except ReproError as exc:
            raise ScenarioValidationError("network", str(exc)) from exc

        workloads_payload = _expect(payload, "workloads", "")
        if not isinstance(workloads_payload, Sequence) or isinstance(
            workloads_payload, (str, bytes)
        ):
            raise ScenarioValidationError("workloads", "expected a list")
        workloads = tuple(
            ScenarioWorkload.from_dict(entry, network.num_npus, f"workloads[{i}]")
            for i, entry in enumerate(workloads_payload)
        )

        constraints_payload = payload.get("constraints")
        constraints = None
        if constraints_payload is not None:
            try:
                constraints = ConstraintSet.from_dict(
                    _expect_mapping(constraints_payload, "constraints")
                )
            except ConfigurationError as exc:
                if isinstance(exc, ScenarioValidationError):
                    raise
                raise ScenarioValidationError("constraints", str(exc)) from exc

        cost_model = _resolve_model_field(
            payload.get("cost_model"), "cost_model",
            resolve_cost_model, CostModel.from_dict,
        )
        compute_model = _resolve_model_field(
            payload.get("compute_model"), "compute_model",
            lambda name: _resolve_compute(name), ComputeModel.from_dict,
        )

        loop = payload.get("loop", "no-overlap")
        if not isinstance(loop, str):
            raise ScenarioValidationError("loop", "expected a loop name string")

        dims = payload.get("in_network_dims", ())
        if not isinstance(dims, Sequence) or isinstance(dims, (str, bytes)):
            raise ScenarioValidationError("in_network_dims", "expected a list")

        try:
            return cls(
                network=network,
                workloads=workloads,
                constraints=constraints,
                cost_model=cost_model,
                compute_model=compute_model,
                loop=loop,
                in_network_dims=tuple(int(d) for d in dims),
            )
        except ConfigurationError as exc:
            if isinstance(exc, ScenarioValidationError):
                raise
            raise ScenarioValidationError("$", str(exc)) from exc

    # -- compilation ---------------------------------------------------------

    def compile(self) -> Libra:
        """A configured :class:`Libra` engine for this scenario.

        Compilation is pure — the scenario is not referenced afterwards —
        so the service can memoize engines on :meth:`key`.
        """
        engine = Libra(
            network=self.network,
            cost_model=self.cost_model,
            compute_model=self.compute_model,
            loop=resolve_loop(self.loop),
            in_network_dims=self.in_network_dims,
        )
        for entry in self.workloads:
            engine.add_workload(entry.workload, weight=entry.weight)
        return engine

    def with_constraints(self, constraints: ConstraintSet) -> "Scenario":
        """Copy of this scenario with the constraint set replaced."""
        return replace(self, constraints=constraints)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return self.compile().describe()


def _resolve_compute(name: str) -> ComputeModel:
    from repro.api.registry import resolve_compute_model

    return resolve_compute_model(name)


def _resolve_model_field(value, path, by_name, by_dict):
    """A model field is ``None`` (default), a registry name, or a payload."""
    if value is None:
        return None
    if isinstance(value, str):
        try:
            return by_name(value)
        except ConfigurationError as exc:
            raise ScenarioValidationError(path, str(exc)) from exc
    try:
        return by_dict(_expect_mapping(value, path))
    except ConfigurationError as exc:
        if isinstance(exc, ScenarioValidationError):
            raise
        raise ScenarioValidationError(path, str(exc)) from exc


# ---------------------------------------------------------------------------
# Construction and file helpers
# ---------------------------------------------------------------------------


def build_scenario(
    topology: str | MultiDimNetwork,
    workloads: Sequence[str | Workload | tuple[str | Workload, float]],
    *,
    total_bw_gbps: float | None = None,
    dim_caps_gbps: Sequence[tuple[int, float]] = (),
    constraints: ConstraintSet | None = None,
    cost_model: CostModel | str | None = None,
    compute_model: ComputeModel | str | None = None,
    loop: str = "no-overlap",
    in_network_dims: Sequence[int] = (),
) -> Scenario:
    """Build a :class:`Scenario`, resolving names through the registries.

    Args:
        topology: Preset name, notation string, or a concrete network.
        workloads: Preset names, concrete workloads, or ``(workload, weight)``
            pairs; weights default to 1.
        total_bw_gbps: Aggregate per-NPU budget in GB/s; builds the standard
            budget constraint set (with ``dim_caps_gbps`` applied).
        dim_caps_gbps: Per-dimension caps as ``(dim, GB/s)`` pairs.
        constraints: A pre-built constraint set (mutually exclusive with
            ``total_bw_gbps``/``dim_caps_gbps``).
        cost_model: Cost table or registry name; ``None`` = Table I.
        compute_model: Compute model or registry name; ``None`` = A100.
        loop: Training-loop registry name.
        in_network_dims: Dimensions with in-network collective offload.
    """
    if isinstance(topology, MultiDimNetwork):
        network = topology
    else:
        network = resolve_topology(topology)

    entries = []
    for item in workloads:
        weight = 1.0
        if isinstance(item, tuple):
            item, weight = item
        if isinstance(item, Workload):
            entries.append(ScenarioWorkload(workload=item, weight=weight))
        else:
            entries.append(
                ScenarioWorkload(
                    workload=resolve_workload(item, network.num_npus),
                    weight=weight,
                    preset=item,
                )
            )

    if constraints is not None and (total_bw_gbps is not None or dim_caps_gbps):
        raise ConfigurationError(
            "pass either a pre-built constraint set or "
            "total_bw_gbps/dim_caps_gbps, not both"
        )
    if constraints is None and total_bw_gbps is not None:
        constraints = ConstraintSet(network.num_dims).with_total_bandwidth(
            gbps(total_bw_gbps)
        )
        for dim, cap in dim_caps_gbps:
            constraints.with_dim_cap(int(dim), gbps(float(cap)))
    elif constraints is None and dim_caps_gbps:
        raise ConfigurationError("dim_caps_gbps requires total_bw_gbps")

    if isinstance(cost_model, str):
        cost_model = resolve_cost_model(cost_model)
    if isinstance(compute_model, str):
        compute_model = _resolve_compute(compute_model)

    return Scenario(
        network=network,
        workloads=tuple(entries),
        constraints=constraints,
        cost_model=cost_model,
        compute_model=compute_model,
        loop=loop,
        in_network_dims=tuple(in_network_dims),
    )


def load_scenario(path) -> Scenario:
    """Read a scenario JSON file from disk."""
    import json
    from pathlib import Path

    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"scenario {path} is not valid JSON: {exc}"
        ) from exc
    return Scenario.from_dict(payload)


def save_scenario(scenario: Scenario, path) -> None:
    """Write a scenario as deterministic, diff-friendly JSON."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps(scenario.to_dict(), indent=1, sort_keys=True) + "\n"
    )

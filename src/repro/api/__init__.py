"""repro.api — the declarative, versioned Scenario/Service API.

This package is the library's public request/response surface. Instead of
hand-assembling :class:`~repro.core.framework.Libra` objects, consumers
state the whole problem as a frozen, JSON-round-trippable
:class:`Scenario`, wrap it in an :class:`OptimizeRequest` (or a whole grid
in a :class:`BatchRequest`), and submit it to a stateless
:class:`LibraService`::

    from repro.api import LibraService, OptimizeRequest, build_scenario

    scenario = build_scenario("4D-4K", ["GPT-3"], total_bw_gbps=500)
    response = LibraService().submit(OptimizeRequest(scenario=scenario))
    optimum = response.point
    speedup = response.speedup_over_baseline

Why request-shaped? Every production concern the roadmap names — batching,
caching, sharding, serving over the wire — needs the problem statement to
be a first-class serializable value rather than mutable object state. A
scenario's :meth:`~Scenario.key` is its content address, the service
memoizes compiled engines on :meth:`~Scenario.engine_key` (the same
payload minus constraints, which compilation never reads), and
:meth:`~Scenario.to_dict` / :meth:`~Scenario.from_dict` round-trip under
an explicit schema version.

Extension points live in :mod:`repro.api.registry`: topologies, workloads,
cost models, compute models, training loops, and scheme aliases are all
string-keyed registries with a ``register`` decorator, so user-defined
entries work everywhere a name is accepted (scenario files, the CLI,
``repro explore`` axes).

Layering: ``api`` sits between ``core`` and ``explore`` — batch requests
reach the explore engine through a lazy import, and ``explore.spec``
re-imports the scheme aliases from the registry.
"""

from repro.api.registry import (
    COMPUTE_MODELS,
    COST_MODELS,
    LOOPS,
    SCHEME_ALIASES,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
    resolve_compute_model,
    resolve_cost_model,
    resolve_loop,
    resolve_scheme,
    resolve_topology,
    resolve_workload,
)
from repro.api.requests import (
    REQUEST_SCHEMA_VERSION,
    RESPONSE_SCHEMA_VERSION,
    WARM_START_AUTO,
    AnalyzeRequest,
    AnalyzeResponse,
    BatchRequest,
    BatchResponse,
    CostrategyRequest,
    CostrategyResponse,
    OptimizeRequest,
    OptimizeResponse,
)
from repro.api.scenario import (
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    ScenarioValidationError,
    ScenarioWorkload,
    build_scenario,
    load_scenario,
    save_scenario,
)
from repro.api.service import LibraService, get_service, reset_service

__all__ = [
    "COMPUTE_MODELS",
    "COST_MODELS",
    "LOOPS",
    "SCHEME_ALIASES",
    "TOPOLOGIES",
    "WORKLOADS",
    "Registry",
    "resolve_compute_model",
    "resolve_cost_model",
    "resolve_loop",
    "resolve_scheme",
    "resolve_topology",
    "resolve_workload",
    "REQUEST_SCHEMA_VERSION",
    "RESPONSE_SCHEMA_VERSION",
    "WARM_START_AUTO",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "BatchRequest",
    "BatchResponse",
    "CostrategyRequest",
    "CostrategyResponse",
    "OptimizeRequest",
    "OptimizeResponse",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "ScenarioValidationError",
    "ScenarioWorkload",
    "build_scenario",
    "load_scenario",
    "save_scenario",
    "LibraService",
    "get_service",
    "reset_service",
]

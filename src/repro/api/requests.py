"""Request and response value types for :class:`~repro.api.service.LibraService`.

Every interaction with the service is a frozen request value and a frozen
response value, both JSON round-trippable:

* :class:`OptimizeRequest` — one scenario plus a scheme. Three shapes:
  a *solve* (``scheme`` is ``PerfOptBW``/``PerfPerCostOptBW``), an
  *EqualBW baseline* (``scheme`` is ``EqualBW``), or an *explicit
  evaluation* (``bandwidths_gbps`` set — no solver involved).
* :class:`OptimizeResponse` — the resulting design point, the EqualBW
  baseline when a budget exists, and the two headline comparison metrics.
* :class:`BatchRequest` — a whole :class:`~repro.explore.spec.SweepSpec`
  grid routed through the explore engine and its content-addressed cache.

Requests and responses carry :data:`REQUEST_SCHEMA_VERSION` /
:data:`RESPONSE_SCHEMA_VERSION` so downstream consumers (CI validation,
future HTTP front ends) can detect layout drift.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.report import AnalysisReport
from repro.analysis.whatif import WhatIfQuery
from repro.api.registry import resolve_scheme
from repro.api.scenario import Scenario
from repro.core.results import DesignPoint, Scheme
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # explore/strategy sit above the api layer; never import here
    from repro.explore.records import SweepResult
    from repro.explore.spec import ExplorationPoint, SweepSpec
    from repro.strategy.frontier import StrategyFrontier
    from repro.strategy.space import StrategySpace

#: Bump when the response payload layout changes incompatibly.
#: v2: added the ``diagnostics`` object (multi-start / warm-start telemetry).
#: v3: batch responses carry sweep ``diagnostics`` (fan-out, warm-hit rate,
#: per-stage timings) and responses may arrive wrapped in a ``job``
#: envelope (:mod:`repro.serve`). v4: adds the ``analyze`` response shape
#: (bottleneck-structure reports); optimize/batch layouts are unchanged,
#: so v2 and v3 payloads are still readable. v5: adds the ``costrategy``
#: response shape (strategy frontiers); every earlier layout is unchanged,
#: so v2–v4 payloads remain readable.
RESPONSE_SCHEMA_VERSION = 5

#: Bump when the request payload layout changes incompatibly.
#: v1 payloads (no ``schema_version`` field) predate continuation solving
#: and are still readable — the warm-start fields simply default to cold.
#: v2 payloads (continuation fields, no ``kind`` envelope) up-convert via
#: :func:`request_from_dict`. v3 adds the typed job envelope
#: ``{"kind": "optimize"|"batch", "request": {...}}`` so one wire endpoint
#: (``POST /v3/jobs``) can carry both request shapes. v4 adds the
#: ``analyze`` kind to the envelope; the optimize/batch layouts are
#: unchanged, so v3 envelopes up-convert transparently. v5 adds the
#: ``costrategy`` kind (joint strategy × bandwidth co-optimization); the
#: earlier kinds are unchanged, so v4 envelopes up-convert transparently.
REQUEST_SCHEMA_VERSION = 5

#: Request schema versions :func:`OptimizeRequest.from_dict` still reads.
_READABLE_REQUEST_VERSIONS = (1, 2, 3, 4, REQUEST_SCHEMA_VERSION)

#: Response schema versions :func:`OptimizeResponse.from_dict` still reads
#: (the v2 → v3 layout change touched only batch responses; v3 → v4 only
#: added the analyze shape; v4 → v5 only added the costrategy shape).
_READABLE_RESPONSE_VERSIONS = (2, 3, 4, RESPONSE_SCHEMA_VERSION)


def check_schema_version(
    payload: Mapping,
    readable: tuple[int, ...],
    what: str,
    default: int | None = None,
) -> int:
    """The one schema-version gate every ``from_dict`` goes through.

    Reads ``payload["schema_version"]`` (falling back to ``default`` when
    the field is absent — pass ``None`` to make it required) and raises a
    located :class:`ConfigurationError` unless it is in ``readable``.
    Centralized so a future v4 bump changes one place, not every codec.
    """
    version = payload.get("schema_version", default)
    if version not in readable:
        shown = readable[0] if len(readable) == 1 else readable
        raise ConfigurationError(
            f"unsupported {what} schema version {version!r}; this "
            f"library reads {'version' if len(readable) == 1 else 'versions'} "
            f"{shown}"
        )
    return version

#: The ``warm_start`` sentinel asking the service to consult its own
#: per-engine solution memo instead of an explicitly provided point.
WARM_START_AUTO = "auto"


@dataclass(frozen=True)
class OptimizeRequest:
    """One optimization (or evaluation) of a scenario.

    Attributes:
        scenario: The problem statement.
        scheme: Allocation scheme to run; ignored as a solver choice when
            ``bandwidths_gbps`` is given (it then only tags the point).
        bandwidths_gbps: Explicit per-dimension bandwidths to evaluate
            instead of solving, GB/s.
        include_baseline: Attach the EqualBW baseline and comparison
            metrics when the scenario carries a total-bandwidth budget.
        kernel: Solver kernel (``"vectorized"`` or ``"closures"``).
        warm_start: Continuation seed for the solver. ``None`` (default) is
            the cold path; a bandwidth tuple (GB/s) is an explicit prior
            optimum (e.g. the neighboring sweep cell); the string
            :data:`WARM_START_AUTO` asks the service to look up its
            solution memo for this engine × scheme × constraint family.
            Ignored for EqualBW and explicit evaluations.
        max_starts: Cap on the solver's multi-start seed family; ``None``
            keeps the full family (the historical default).
    """

    scenario: Scenario
    scheme: Scheme = Scheme.PERF_OPT
    bandwidths_gbps: tuple[float, ...] | None = None
    include_baseline: bool = True
    kernel: str = "vectorized"
    warm_start: tuple[float, ...] | str | None = None
    max_starts: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        if isinstance(self.warm_start, str):
            if self.warm_start != WARM_START_AUTO:
                raise ConfigurationError(
                    f"warm_start must be a bandwidth tuple, None, or "
                    f"{WARM_START_AUTO!r}; got {self.warm_start!r}"
                )
        elif self.warm_start is not None:
            values = tuple(float(b) for b in self.warm_start)
            if len(values) != self.scenario.network.num_dims:
                raise ConfigurationError(
                    f"warm_start needs {self.scenario.network.num_dims} "
                    f"bandwidths, got {len(values)}"
                )
            if any(b <= 0 for b in values):
                raise ConfigurationError(
                    f"warm_start bandwidths must be positive, got {values}"
                )
            object.__setattr__(self, "warm_start", values)
        if self.max_starts is not None and self.max_starts < 1:
            raise ConfigurationError(
                f"max_starts must be >= 1, got {self.max_starts}"
            )
        if self.bandwidths_gbps is not None:
            values = tuple(float(b) for b in self.bandwidths_gbps)
            if len(values) != self.scenario.network.num_dims:
                raise ConfigurationError(
                    f"expected {self.scenario.network.num_dims} bandwidths, "
                    f"got {len(values)}"
                )
            if any(b <= 0 for b in values):
                raise ConfigurationError(
                    f"bandwidths must be positive, got {values}"
                )
            object.__setattr__(self, "bandwidths_gbps", values)
        elif self.scenario.constraints is None:
            raise ConfigurationError(
                "scenario has no constraints; either give the scenario a "
                "constraint set or pass explicit bandwidths_gbps"
            )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        warm = self.warm_start
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "scenario": self.scenario.to_dict(),
            "scheme": self.scheme.value,
            "bandwidths_gbps": (
                None if self.bandwidths_gbps is None else list(self.bandwidths_gbps)
            ),
            "include_baseline": self.include_baseline,
            "kernel": self.kernel,
            "warm_start": list(warm) if isinstance(warm, tuple) else warm,
            "max_starts": self.max_starts,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Accepts version-1 payloads (no ``schema_version`` field), which
        predate the continuation fields and parse as cold requests, and
        version-2 payloads (same field layout as v3, minus the job
        envelope handled by :func:`request_from_dict`).
        """
        check_schema_version(
            payload, _READABLE_REQUEST_VERSIONS, "request", default=1
        )
        try:
            bandwidths = payload.get("bandwidths_gbps")
            warm = payload.get("warm_start")
            max_starts = payload.get("max_starts")
            return cls(
                scenario=Scenario.from_dict(payload["scenario"]),
                scheme=resolve_scheme(payload.get("scheme", "perf")),
                bandwidths_gbps=(
                    None if bandwidths is None
                    else tuple(float(b) for b in bandwidths)
                ),
                include_baseline=bool(payload.get("include_baseline", True)),
                kernel=str(payload.get("kernel", "vectorized")),
                warm_start=(
                    warm if warm is None or isinstance(warm, str)
                    else tuple(float(b) for b in warm)
                ),
                max_starts=None if max_starts is None else int(max_starts),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed optimize-request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class OptimizeResponse:
    """The answer to one :class:`OptimizeRequest`.

    Attributes:
        scenario_key: Content address of the scenario that was solved.
        scheme: Scheme the point was produced under.
        point: The resulting design point.
        baseline: The scenario's EqualBW baseline (``None`` when the
            scenario has no budget or the request declined it).
        speedup_over_baseline: ``T_base / T_point`` on the weighted group
            objective; ``None`` without a baseline.
        ppc_gain_over_baseline: ``(T·C)_base / (T·C)_point``; ``None``
            without a baseline.
        diagnostics: Solver telemetry for solve requests (``None`` for
            EqualBW and explicit evaluations): ``starts`` — seeds the
            multi-start actually ran; ``max_starts`` — the requested cap;
            ``warm_start`` — ``"cold"``, ``"accepted"``, or
            ``"rejected:<reason>"``; ``warm_source`` — where the warm seed
            came from (``"none"``, ``"explicit"``, ``"memo-hit"``,
            ``"memo-miss"``).
    """

    scenario_key: str
    scheme: Scheme
    point: DesignPoint
    baseline: DesignPoint | None = None
    speedup_over_baseline: float | None = None
    ppc_gain_over_baseline: float | None = None
    diagnostics: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (``json.dumps``-able without custom encoders)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "scenario_key": self.scenario_key,
            "scheme": self.scheme.value,
            "point": self.point.to_dict(),
            "baseline": None if self.baseline is None else self.baseline.to_dict(),
            "speedup_over_baseline": self.speedup_over_baseline,
            "ppc_gain_over_baseline": self.ppc_gain_over_baseline,
            "diagnostics": (
                None if self.diagnostics is None else dict(self.diagnostics)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeResponse":
        """Rebuild a response from :meth:`to_dict` output (v2 or v3)."""
        check_schema_version(payload, _READABLE_RESPONSE_VERSIONS, "response")
        try:
            baseline = payload.get("baseline")
            speedup = payload.get("speedup_over_baseline")
            ppc = payload.get("ppc_gain_over_baseline")
            diagnostics = payload.get("diagnostics")
            return cls(
                scenario_key=str(payload["scenario_key"]),
                scheme=resolve_scheme(payload["scheme"]),
                point=DesignPoint.from_dict(payload["point"]),
                baseline=(
                    None if baseline is None else DesignPoint.from_dict(baseline)
                ),
                speedup_over_baseline=None if speedup is None else float(speedup),
                ppc_gain_over_baseline=None if ppc is None else float(ppc),
                diagnostics=None if diagnostics is None else dict(diagnostics),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed optimize-response payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class BatchRequest:
    """A whole exploration grid as one request.

    Routed through :func:`repro.explore.executor.run_sweep`, so batch
    submissions get the parallel executor, per-cell failure containment,
    and the content-addressed result cache for free.

    Attributes:
        spec: The sweep grid (workloads × topologies × budgets × schemes).
        workers: Process-pool width; 1 solves inline.
        cache_dir: Content-addressed on-disk result cache directory;
            ``None`` uses a per-service in-memory cache.
    """

    spec: "SweepSpec"
    workers: int = 1
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Only name-addressable specs serialize (a spec carrying concrete
        ``Workload`` or ``CostModel`` objects round-trips through the
        registry names it was built from, exactly as spec files do).
        ``cache_dir`` is interpreted by whichever process executes the
        request — for remote submission it names a *server-side* cache.
        """
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "workers": self.workers,
            "cache_dir": self.cache_dir,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchRequest":
        """Rebuild a batch request from :meth:`to_dict` output."""
        from repro.explore.spec import SweepSpec

        check_schema_version(
            payload, _READABLE_REQUEST_VERSIONS, "request",
            default=REQUEST_SCHEMA_VERSION,
        )
        try:
            workers = payload.get("workers", 1)
            cache_dir = payload.get("cache_dir")
            return cls(
                spec=SweepSpec.from_dict(payload["spec"]),
                workers=int(workers),
                cache_dir=None if cache_dir is None else str(cache_dir),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed batch-request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class BatchResponse:
    """The answer to one :class:`BatchRequest`: the assembled sweep rows.

    Attributes:
        sweep: The grid rows plus execution accounting.
        diagnostics: Sweep telemetry remote clients would otherwise lose
            (``repro explore --profile`` prints the same numbers locally):
            ``fanout_cells`` — duplicate grid cells served by copying;
            ``cache_hits`` / ``solver_calls`` — the cache split;
            ``warm_hit_rate`` plus the ``profile`` object — per-stage
            timings and warm-start accounting of this particular
            execution. ``None`` on payloads that predate schema v3.
    """

    sweep: "SweepResult"
    diagnostics: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (row schema is the explore artifact format)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "sweep": self.sweep.to_dict(),
            "diagnostics": (
                None if self.diagnostics is None else dict(self.diagnostics)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchResponse":
        """Rebuild a batch response from :meth:`to_dict` output (v2 or v3)."""
        from repro.explore.records import SweepResult

        check_schema_version(payload, _READABLE_RESPONSE_VERSIONS, "response")
        try:
            diagnostics = payload.get("diagnostics")
            return cls(
                sweep=SweepResult.from_dict(payload["sweep"]),
                diagnostics=None if diagnostics is None else dict(diagnostics),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed batch-response payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class AnalyzeRequest:
    """Ask *why* a design point looks the way it does (schema v4).

    The target point resolves one of three ways, cheapest first:

    * ``cell`` — a cached sweep cell (:class:`~repro.explore.spec.
      ExplorationPoint`): the service reads the point from the result
      cache and **never runs the solver** (a cache miss is an error —
      analysis is read-only by contract);
    * ``scenario`` + ``bandwidths_gbps`` — an inline point evaluated
      directly (no solver);
    * ``scenario`` alone — the service solves (or serves from its
      solution memo) under ``scheme`` first, then analyzes the optimum.

    Attributes:
        scenario: Problem statement for inline/solve targets.
        cell: Cached sweep cell to analyze (mutually exclusive with
            ``scenario``).
        cache_dir: On-disk result cache holding ``cell``; ``None`` uses
            the service's in-memory batch cache.
        scheme: Scheme of the analyzed point.
        bandwidths_gbps: Explicit point to analyze (GB/s) instead of the
            scheme optimum; requires ``scenario``.
        queries: What-if perturbations to evaluate; empty runs the
            deterministic default probe set.
    """

    scenario: Scenario | None = None
    cell: "ExplorationPoint | None" = None
    cache_dir: str | None = None
    scheme: Scheme = Scheme.PERF_OPT
    bandwidths_gbps: tuple[float, ...] | None = None
    queries: tuple[WhatIfQuery, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        if (self.scenario is None) == (self.cell is None):
            raise ConfigurationError(
                "analyze request needs exactly one target: a scenario or "
                "a cached sweep cell"
            )
        if self.bandwidths_gbps is not None:
            if self.scenario is None:
                raise ConfigurationError(
                    "explicit bandwidths_gbps require a scenario target "
                    "(a cell names its own cached point)"
                )
            values = tuple(float(b) for b in self.bandwidths_gbps)
            if len(values) != self.scenario.network.num_dims:
                raise ConfigurationError(
                    f"expected {self.scenario.network.num_dims} bandwidths, "
                    f"got {len(values)}"
                )
            if any(b <= 0 for b in values):
                raise ConfigurationError(
                    f"bandwidths must be positive, got {values}"
                )
            object.__setattr__(self, "bandwidths_gbps", values)
        object.__setattr__(self, "queries", tuple(self.queries))
        for query in self.queries:
            if not isinstance(query, WhatIfQuery):
                raise ConfigurationError(
                    f"queries must be WhatIfQuery values, got "
                    f"{type(query).__name__}"
                )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "scenario": (
                None if self.scenario is None else self.scenario.to_dict()
            ),
            "cell": None if self.cell is None else self.cell.to_dict(),
            "cache_dir": self.cache_dir,
            "scheme": self.scheme.value,
            "bandwidths_gbps": (
                None if self.bandwidths_gbps is None
                else list(self.bandwidths_gbps)
            ),
            "queries": [query.to_dict() for query in self.queries],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AnalyzeRequest":
        """Rebuild an analyze request from :meth:`to_dict` output."""
        from repro.explore.spec import ExplorationPoint

        check_schema_version(
            payload, _READABLE_REQUEST_VERSIONS, "request",
            default=REQUEST_SCHEMA_VERSION,
        )
        try:
            scenario = payload.get("scenario")
            cell = payload.get("cell")
            cache_dir = payload.get("cache_dir")
            bandwidths = payload.get("bandwidths_gbps")
            return cls(
                scenario=(
                    None if scenario is None else Scenario.from_dict(scenario)
                ),
                cell=(
                    None if cell is None else ExplorationPoint.from_dict(cell)
                ),
                cache_dir=None if cache_dir is None else str(cache_dir),
                scheme=resolve_scheme(payload.get("scheme", "perf")),
                bandwidths_gbps=(
                    None if bandwidths is None
                    else tuple(float(b) for b in bandwidths)
                ),
                queries=tuple(
                    WhatIfQuery.from_dict(query)
                    for query in payload.get("queries", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed analyze-request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class AnalyzeResponse:
    """The answer to one :class:`AnalyzeRequest`.

    Attributes:
        scenario_key: Content address of the analyzed scenario.
        scheme: Scheme of the analyzed point.
        report: The bottleneck-structure + what-if report.
        source: How the target point was obtained — ``"cache"`` (a cached
            sweep cell), ``"inline"`` (explicit bandwidths), or
            ``"solve"`` (the service solved/memo-served the optimum).
        memo_hit: True when the whole response came from the service's
            analyze memo (no re-computation at all).
        diagnostics: What-if memo accounting and resolution telemetry.
    """

    scenario_key: str
    scheme: Scheme
    report: AnalysisReport
    source: str
    memo_hit: bool = False
    diagnostics: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (``json.dumps``-able without custom encoders)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "scenario_key": self.scenario_key,
            "scheme": self.scheme.value,
            "report": self.report.to_dict(),
            "source": self.source,
            "memo_hit": self.memo_hit,
            "diagnostics": (
                None if self.diagnostics is None else dict(self.diagnostics)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AnalyzeResponse":
        """Rebuild an analyze response (introduced in v4; unchanged in v5)."""
        check_schema_version(payload, (4, RESPONSE_SCHEMA_VERSION), "response")
        try:
            diagnostics = payload.get("diagnostics")
            return cls(
                scenario_key=str(payload["scenario_key"]),
                scheme=resolve_scheme(payload["scheme"]),
                report=AnalysisReport.from_dict(payload["report"]),
                source=str(payload["source"]),
                memo_hit=bool(payload.get("memo_hit", False)),
                diagnostics=None if diagnostics is None else dict(diagnostics),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed analyze-response payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class CostrategyRequest:
    """Joint parallelization-strategy × bandwidth co-optimization (v5).

    The service enumerates the :class:`~repro.strategy.space.StrategySpace`
    over the topology's node count, solves every surviving strategy across
    ``budgets_gbps`` through the shared result cache (warm-starting within
    and across strategies), and answers with the
    :class:`~repro.strategy.frontier.StrategyFrontier`.

    Attributes:
        workload: Registered workload preset name (the strategy axis
            re-parallelizes it, so only presets are accepted — a concrete
            workload already fixes its parallelism).
        topology: Topology preset name; its node count is the number the
            strategy space factorizes.
        budgets_gbps: Total-bandwidth budgets (GB/s) forming the grid's
            bandwidth axis.
        scheme: Allocation scheme for every solved cell.
        space: Strategy-space bounds; ``None`` means the default space
            (power-of-two TP degrees up to the node count, no CP/EP/PP).
        dim_caps_gbps: Per-dimension bandwidth caps as ``(dim, GB/s)``
            pairs, applied to every cell (the sweep-spec convention).
        cache_dir: On-disk result cache directory; ``None`` uses the
            service's shared in-memory batch cache.
        cross_warm: Seed each strategy's cells from the previous
            strategy's optima at the same budget (the adjacency the
            deterministic enumeration order is designed for).
        attribution: Attach per-strategy binding-dimension attribution to
            the frontier (read-only analyze calls; never fails the search).
    """

    workload: str
    topology: str
    budgets_gbps: tuple[float, ...]
    scheme: Scheme = Scheme.PERF_OPT
    space: "StrategySpace | None" = None
    dim_caps_gbps: tuple[tuple[int, float], ...] = ()
    cache_dir: str | None = None
    cross_warm: bool = True
    attribution: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigurationError(
                "costrategy request needs a workload preset name"
            )
        if not isinstance(self.topology, str) or not self.topology:
            raise ConfigurationError(
                "costrategy request needs a topology preset name"
            )
        budgets = tuple(float(b) for b in self.budgets_gbps)
        if not budgets:
            raise ConfigurationError(
                "costrategy request needs at least one bandwidth budget"
            )
        if any(b <= 0 for b in budgets):
            raise ConfigurationError(
                f"bandwidth budgets must be positive, got {budgets}"
            )
        object.__setattr__(self, "budgets_gbps", budgets)
        caps = tuple(
            (int(dim), float(cap)) for dim, cap in self.dim_caps_gbps
        )
        if any(cap <= 0 for _, cap in caps):
            raise ConfigurationError(
                f"dimension caps must be positive, got {caps}"
            )
        object.__setattr__(self, "dim_caps_gbps", caps)

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "workload": self.workload,
            "topology": self.topology,
            "budgets_gbps": list(self.budgets_gbps),
            "scheme": self.scheme.value,
            "space": None if self.space is None else self.space.to_dict(),
            "dim_caps_gbps": [list(pair) for pair in self.dim_caps_gbps],
            "cache_dir": self.cache_dir,
            "cross_warm": self.cross_warm,
            "attribution": self.attribution,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CostrategyRequest":
        """Rebuild a costrategy request from :meth:`to_dict` output."""
        from repro.strategy.space import StrategySpace

        check_schema_version(
            payload, _READABLE_REQUEST_VERSIONS, "request",
            default=REQUEST_SCHEMA_VERSION,
        )
        try:
            space = payload.get("space")
            cache_dir = payload.get("cache_dir")
            return cls(
                workload=str(payload["workload"]),
                topology=str(payload["topology"]),
                budgets_gbps=tuple(
                    float(b) for b in payload.get("budgets_gbps", ())
                ),
                scheme=resolve_scheme(payload.get("scheme", "perf")),
                space=(
                    None if space is None else StrategySpace.from_dict(space)
                ),
                dim_caps_gbps=tuple(
                    (int(dim), float(cap))
                    for dim, cap in payload.get("dim_caps_gbps", ())
                ),
                cache_dir=None if cache_dir is None else str(cache_dir),
                cross_warm=bool(payload.get("cross_warm", True)),
                attribution=bool(payload.get("attribution", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed costrategy-request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class CostrategyResponse:
    """The answer to one :class:`CostrategyRequest`.

    Attributes:
        frontier: The joint search's decision surface — best strategy per
            budget, the strategy × bandwidth Pareto set, per-strategy
            attribution, and every underlying cell (its ``diagnostics``
            carry the warm-start accounting).
    """

    frontier: "StrategyFrontier"

    def to_dict(self) -> dict:
        """JSON-ready payload (``json.dumps``-able without custom encoders)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "frontier": self.frontier.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CostrategyResponse":
        """Rebuild a costrategy response (v5 — the shape's first version)."""
        from repro.strategy.frontier import StrategyFrontier

        check_schema_version(payload, (RESPONSE_SCHEMA_VERSION,), "response")
        try:
            return cls(
                frontier=StrategyFrontier.from_dict(payload["frontier"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed costrategy-response payload: {exc}"
            ) from exc


# ---------------------------------------------------------------------------
# The job envelope: one wire shape for every request kind
# ---------------------------------------------------------------------------

#: ``kind`` discriminator values of the request envelope. ``analyze`` and
#: ``costrategy`` are envelope-only on the wire (a bare analyze payload
#: would sniff as an optimize request via its ``scenario`` field; a bare
#: costrategy payload has no historical bare shape to honor).
REQUEST_KINDS = ("optimize", "batch", "analyze", "costrategy")

#: Any request value the service dispatches on.
ServiceRequest = (
    OptimizeRequest | BatchRequest | AnalyzeRequest | CostrategyRequest
)


def request_kind(request: "ServiceRequest") -> str:
    """The envelope ``kind`` discriminator for a request value."""
    if isinstance(request, BatchRequest):
        return "batch"
    if isinstance(request, AnalyzeRequest):
        return "analyze"
    if isinstance(request, CostrategyRequest):
        return "costrategy"
    if isinstance(request, OptimizeRequest):
        return "optimize"
    raise ConfigurationError(
        f"unknown request type {type(request).__name__}; expected "
        "OptimizeRequest, BatchRequest, AnalyzeRequest, or CostrategyRequest"
    )


def request_to_dict(request: "ServiceRequest") -> dict:
    """Wrap a request in the job envelope; inverse of
    :func:`request_from_dict`.

    The envelope is what ``POST /v3/jobs`` accepts and what job ids are
    derived from::

        {"schema_version": 5, "kind": "optimize", "request": {...}}
    """
    return {
        "schema_version": REQUEST_SCHEMA_VERSION,
        "kind": request_kind(request),
        "request": request.to_dict(),
    }


def request_from_dict(payload: Mapping) -> "ServiceRequest":
    """Parse a request payload, enveloped or bare, any readable version.

    Three accepted shapes:

    * the v3–v5 envelope (``kind`` + ``request``; ``analyze`` and
      ``costrategy`` require it),
    * a bare v1/v2/v3 :class:`OptimizeRequest` payload (up-converted — the
      historical wire format, identified by its ``scenario`` field),
    * a bare :class:`BatchRequest` payload (identified by ``spec``).
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"request payload must be an object, got {type(payload).__name__}"
        )
    if "kind" in payload:
        kind = payload["kind"]
        if kind not in REQUEST_KINDS:
            raise ConfigurationError(
                f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
            )
        check_schema_version(
            payload, _READABLE_REQUEST_VERSIONS, "request",
            default=REQUEST_SCHEMA_VERSION,
        )
        body = payload.get("request")
        if not isinstance(body, Mapping):
            raise ConfigurationError(
                "request envelope is missing its 'request' object"
            )
        if kind == "batch":
            return BatchRequest.from_dict(body)
        if kind == "analyze":
            return AnalyzeRequest.from_dict(body)
        if kind == "costrategy":
            return CostrategyRequest.from_dict(body)
        return OptimizeRequest.from_dict(body)
    # Bare payloads: v1/v2 optimize requests (and their v3 equivalents)
    # carry a scenario; batch payloads carry a spec.
    if "scenario" in payload:
        return OptimizeRequest.from_dict(payload)
    if "spec" in payload:
        return BatchRequest.from_dict(payload)
    raise ConfigurationError(
        "request payload has neither a 'kind' envelope, a 'scenario' "
        "(optimize request), nor a 'spec' (batch request)"
    )

"""Request and response value types for :class:`~repro.api.service.LibraService`.

Every interaction with the service is a frozen request value and a frozen
response value, both JSON round-trippable:

* :class:`OptimizeRequest` — one scenario plus a scheme. Three shapes:
  a *solve* (``scheme`` is ``PerfOptBW``/``PerfPerCostOptBW``), an
  *EqualBW baseline* (``scheme`` is ``EqualBW``), or an *explicit
  evaluation* (``bandwidths_gbps`` set — no solver involved).
* :class:`OptimizeResponse` — the resulting design point, the EqualBW
  baseline when a budget exists, and the two headline comparison metrics.
* :class:`BatchRequest` — a whole :class:`~repro.explore.spec.SweepSpec`
  grid routed through the explore engine and its content-addressed cache.

Requests and responses carry :data:`REQUEST_SCHEMA_VERSION` /
:data:`RESPONSE_SCHEMA_VERSION` so downstream consumers (CI validation,
future HTTP front ends) can detect layout drift.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.registry import resolve_scheme
from repro.api.scenario import Scenario
from repro.core.results import DesignPoint, Scheme
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # explore sits above the api layer; never import it here
    from repro.explore.records import SweepResult
    from repro.explore.spec import SweepSpec

#: Bump when the OptimizeResponse payload layout changes incompatibly.
#: v2: added the ``diagnostics`` object (multi-start / warm-start telemetry).
RESPONSE_SCHEMA_VERSION = 2

#: Bump when the OptimizeRequest payload layout changes incompatibly.
#: v1 payloads (no ``schema_version`` field) predate continuation solving
#: and are still readable — the warm-start fields simply default to cold.
REQUEST_SCHEMA_VERSION = 2

#: The ``warm_start`` sentinel asking the service to consult its own
#: per-engine solution memo instead of an explicitly provided point.
WARM_START_AUTO = "auto"


@dataclass(frozen=True)
class OptimizeRequest:
    """One optimization (or evaluation) of a scenario.

    Attributes:
        scenario: The problem statement.
        scheme: Allocation scheme to run; ignored as a solver choice when
            ``bandwidths_gbps`` is given (it then only tags the point).
        bandwidths_gbps: Explicit per-dimension bandwidths to evaluate
            instead of solving, GB/s.
        include_baseline: Attach the EqualBW baseline and comparison
            metrics when the scenario carries a total-bandwidth budget.
        kernel: Solver kernel (``"vectorized"`` or ``"closures"``).
        warm_start: Continuation seed for the solver. ``None`` (default) is
            the cold path; a bandwidth tuple (GB/s) is an explicit prior
            optimum (e.g. the neighboring sweep cell); the string
            :data:`WARM_START_AUTO` asks the service to look up its
            solution memo for this engine × scheme × constraint family.
            Ignored for EqualBW and explicit evaluations.
        max_starts: Cap on the solver's multi-start seed family; ``None``
            keeps the full family (the historical default).
    """

    scenario: Scenario
    scheme: Scheme = Scheme.PERF_OPT
    bandwidths_gbps: tuple[float, ...] | None = None
    include_baseline: bool = True
    kernel: str = "vectorized"
    warm_start: tuple[float, ...] | str | None = None
    max_starts: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        if isinstance(self.warm_start, str):
            if self.warm_start != WARM_START_AUTO:
                raise ConfigurationError(
                    f"warm_start must be a bandwidth tuple, None, or "
                    f"{WARM_START_AUTO!r}; got {self.warm_start!r}"
                )
        elif self.warm_start is not None:
            values = tuple(float(b) for b in self.warm_start)
            if len(values) != self.scenario.network.num_dims:
                raise ConfigurationError(
                    f"warm_start needs {self.scenario.network.num_dims} "
                    f"bandwidths, got {len(values)}"
                )
            if any(b <= 0 for b in values):
                raise ConfigurationError(
                    f"warm_start bandwidths must be positive, got {values}"
                )
            object.__setattr__(self, "warm_start", values)
        if self.max_starts is not None and self.max_starts < 1:
            raise ConfigurationError(
                f"max_starts must be >= 1, got {self.max_starts}"
            )
        if self.bandwidths_gbps is not None:
            values = tuple(float(b) for b in self.bandwidths_gbps)
            if len(values) != self.scenario.network.num_dims:
                raise ConfigurationError(
                    f"expected {self.scenario.network.num_dims} bandwidths, "
                    f"got {len(values)}"
                )
            if any(b <= 0 for b in values):
                raise ConfigurationError(
                    f"bandwidths must be positive, got {values}"
                )
            object.__setattr__(self, "bandwidths_gbps", values)
        elif self.scenario.constraints is None:
            raise ConfigurationError(
                "scenario has no constraints; either give the scenario a "
                "constraint set or pass explicit bandwidths_gbps"
            )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        warm = self.warm_start
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "scenario": self.scenario.to_dict(),
            "scheme": self.scheme.value,
            "bandwidths_gbps": (
                None if self.bandwidths_gbps is None else list(self.bandwidths_gbps)
            ),
            "include_baseline": self.include_baseline,
            "kernel": self.kernel,
            "warm_start": list(warm) if isinstance(warm, tuple) else warm,
            "max_starts": self.max_starts,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Accepts version-1 payloads (no ``schema_version`` field), which
        predate the continuation fields and parse as cold requests.
        """
        version = payload.get("schema_version", 1)
        if version not in (1, REQUEST_SCHEMA_VERSION):
            raise ConfigurationError(
                f"unsupported request schema version {version!r}; this "
                f"library reads versions 1 and {REQUEST_SCHEMA_VERSION}"
            )
        try:
            bandwidths = payload.get("bandwidths_gbps")
            warm = payload.get("warm_start")
            max_starts = payload.get("max_starts")
            return cls(
                scenario=Scenario.from_dict(payload["scenario"]),
                scheme=resolve_scheme(payload.get("scheme", "perf")),
                bandwidths_gbps=(
                    None if bandwidths is None
                    else tuple(float(b) for b in bandwidths)
                ),
                include_baseline=bool(payload.get("include_baseline", True)),
                kernel=str(payload.get("kernel", "vectorized")),
                warm_start=(
                    warm if warm is None or isinstance(warm, str)
                    else tuple(float(b) for b in warm)
                ),
                max_starts=None if max_starts is None else int(max_starts),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed optimize-request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class OptimizeResponse:
    """The answer to one :class:`OptimizeRequest`.

    Attributes:
        scenario_key: Content address of the scenario that was solved.
        scheme: Scheme the point was produced under.
        point: The resulting design point.
        baseline: The scenario's EqualBW baseline (``None`` when the
            scenario has no budget or the request declined it).
        speedup_over_baseline: ``T_base / T_point`` on the weighted group
            objective; ``None`` without a baseline.
        ppc_gain_over_baseline: ``(T·C)_base / (T·C)_point``; ``None``
            without a baseline.
        diagnostics: Solver telemetry for solve requests (``None`` for
            EqualBW and explicit evaluations): ``starts`` — seeds the
            multi-start actually ran; ``max_starts`` — the requested cap;
            ``warm_start`` — ``"cold"``, ``"accepted"``, or
            ``"rejected:<reason>"``; ``warm_source`` — where the warm seed
            came from (``"none"``, ``"explicit"``, ``"memo-hit"``,
            ``"memo-miss"``).
    """

    scenario_key: str
    scheme: Scheme
    point: DesignPoint
    baseline: DesignPoint | None = None
    speedup_over_baseline: float | None = None
    ppc_gain_over_baseline: float | None = None
    diagnostics: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (``json.dumps``-able without custom encoders)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "scenario_key": self.scenario_key,
            "scheme": self.scheme.value,
            "point": self.point.to_dict(),
            "baseline": None if self.baseline is None else self.baseline.to_dict(),
            "speedup_over_baseline": self.speedup_over_baseline,
            "ppc_gain_over_baseline": self.ppc_gain_over_baseline,
            "diagnostics": (
                None if self.diagnostics is None else dict(self.diagnostics)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeResponse":
        """Rebuild a response from :meth:`to_dict` output."""
        version = payload.get("schema_version")
        if version != RESPONSE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported response schema version {version!r}; "
                f"this library reads version {RESPONSE_SCHEMA_VERSION}"
            )
        try:
            baseline = payload.get("baseline")
            speedup = payload.get("speedup_over_baseline")
            ppc = payload.get("ppc_gain_over_baseline")
            diagnostics = payload.get("diagnostics")
            return cls(
                scenario_key=str(payload["scenario_key"]),
                scheme=resolve_scheme(payload["scheme"]),
                point=DesignPoint.from_dict(payload["point"]),
                baseline=(
                    None if baseline is None else DesignPoint.from_dict(baseline)
                ),
                speedup_over_baseline=None if speedup is None else float(speedup),
                ppc_gain_over_baseline=None if ppc is None else float(ppc),
                diagnostics=None if diagnostics is None else dict(diagnostics),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed optimize-response payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class BatchRequest:
    """A whole exploration grid as one request.

    Routed through :func:`repro.explore.executor.run_sweep`, so batch
    submissions get the parallel executor, per-cell failure containment,
    and the content-addressed result cache for free.

    Attributes:
        spec: The sweep grid (workloads × topologies × budgets × schemes).
        workers: Process-pool width; 1 solves inline.
        cache_dir: Content-addressed on-disk result cache directory;
            ``None`` uses a per-service in-memory cache.
    """

    spec: "SweepSpec"
    workers: int = 1
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class BatchResponse:
    """The answer to one :class:`BatchRequest`: the assembled sweep rows."""

    sweep: "SweepResult"

    def to_dict(self) -> dict:
        """JSON-ready payload (row schema is the explore artifact format)."""
        return {
            "schema_version": RESPONSE_SCHEMA_VERSION,
            "sweep": self.sweep.to_dict(),
        }

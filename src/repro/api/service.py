"""The stateless request/response front end: :class:`LibraService`.

The service is the one true entry point for answering LIBRA questions. It
owns no problem state — every request carries its complete problem
statement as a :class:`~repro.api.scenario.Scenario` — so a single service
instance can serve arbitrarily many interleaved scenarios, and any future
HTTP/queue front end is a thin codec over :meth:`LibraService.submit`.

The only thing the service keeps is a bounded memo of *compiled engines*:
building a :class:`~repro.core.framework.Libra` from a scenario (workload
construction, symbolic step-time expressions) dominates repeat-request
latency, so engines are cached on the scenario's canonical key. Two
structurally identical scenarios — whatever their display names or payload
field order — share one engine.

Typical session::

    from repro.api import LibraService, OptimizeRequest, build_scenario

    service = LibraService()
    scenario = build_scenario("4D-4K", ["GPT-3"], total_bw_gbps=500)
    response = service.submit(OptimizeRequest(scenario=scenario))
    print(response.point.describe(), response.speedup_over_baseline)
"""

from __future__ import annotations

from collections import OrderedDict

from repro.api.requests import (
    BatchRequest,
    BatchResponse,
    OptimizeRequest,
    OptimizeResponse,
)
from repro.api.scenario import Scenario
from repro.core.framework import Libra
from repro.core.results import DesignPoint, Scheme
from repro.utils.errors import ConfigurationError, OptimizationError
from repro.utils.units import gbps


class LibraService:
    """Stateless scenario optimizer with a bounded compiled-engine memo.

    Args:
        max_compiled: Engine-memo capacity (LRU eviction). Compiled engines
            hold symbolic expression trees, so the bound keeps a
            long-running service's footprint flat.
    """

    def __init__(self, max_compiled: int = 128):
        if max_compiled < 1:
            raise ConfigurationError(
                f"max_compiled must be >= 1, got {max_compiled}"
            )
        self._max_compiled = max_compiled
        self._engines: OrderedDict[str, Libra] = OrderedDict()
        self._batch_cache = None  # lazy per-service in-memory ResultCache

    # -- compilation ---------------------------------------------------------

    def engine(self, scenario: Scenario) -> Libra:
        """The compiled engine for a scenario.

        Memoized on :meth:`Scenario.engine_key` — the canonical payload
        *minus constraints*, which compilation never reads — so scenarios
        differing only in budget or caps share one engine.
        """
        key = scenario.engine_key()
        engine = self._engines.get(key)
        if engine is None:
            engine = scenario.compile()
            self._engines[key] = engine
            if len(self._engines) > self._max_compiled:
                self._engines.popitem(last=False)
        else:
            self._engines.move_to_end(key)
        return engine

    @property
    def compiled_count(self) -> int:
        """How many engines the memo currently holds."""
        return len(self._engines)

    def clear(self) -> None:
        """Drop every memoized engine and the in-memory batch cache."""
        self._engines.clear()
        self._batch_cache = None

    # -- dispatch ------------------------------------------------------------

    def submit(
        self, request: OptimizeRequest | BatchRequest
    ) -> OptimizeResponse | BatchResponse:
        """Answer one request.

        Dispatches on the request type: single solves, explicit-bandwidth
        evaluations, and EqualBW baselines run through the compiled engine;
        batch requests route through the explore engine and its
        content-addressed cache.
        """
        if isinstance(request, BatchRequest):
            return self._submit_batch(request)
        if isinstance(request, OptimizeRequest):
            return self._submit_optimize(request)
        raise ConfigurationError(
            f"unknown request type {type(request).__name__}; expected "
            "OptimizeRequest or BatchRequest"
        )

    # -- single requests -----------------------------------------------------

    def _submit_optimize(self, request: OptimizeRequest) -> OptimizeResponse:
        scenario = request.scenario
        engine = self.engine(scenario)

        if request.bandwidths_gbps is not None:
            point = engine.evaluate(
                [gbps(b) for b in request.bandwidths_gbps], scheme=request.scheme
            )
        elif request.scheme is Scheme.EQUAL_BW:
            point = engine.equal_bw_point(self._budget(scenario))
        else:
            point = engine.optimize(
                request.scheme, scenario.constraints, kernel=request.kernel
            )

        baseline = None
        if (
            request.include_baseline
            and scenario.constraints is not None
            and scenario.constraints.total_bandwidth is not None
        ):
            baseline = engine.equal_bw_point(scenario.constraints.total_bandwidth)

        return OptimizeResponse(
            scenario_key=scenario.key(),
            scheme=request.scheme,
            point=point,
            baseline=baseline,
            speedup_over_baseline=(
                None if baseline is None
                else baseline.weighted_step_time / point.weighted_step_time
            ),
            ppc_gain_over_baseline=(
                None if baseline is None else _ppc_gain(point, baseline)
            ),
        )

    @staticmethod
    def _budget(scenario: Scenario) -> float:
        if (
            scenario.constraints is None
            or scenario.constraints.total_bandwidth is None
        ):
            raise OptimizationError(
                "EqualBW needs a total-bandwidth budget in the scenario's "
                "constraint set"
            )
        return scenario.constraints.total_bandwidth

    # -- batch requests --------------------------------------------------------

    def _submit_batch(self, request: BatchRequest) -> BatchResponse:
        # Imported lazily: the explore engine sits *above* the api layer
        # (its spec module pulls scheme aliases from the registry), so a
        # module-level import here would be circular.
        from repro.explore.cache import ResultCache
        from repro.explore.executor import run_sweep

        if request.cache_dir is not None:
            cache = ResultCache(request.cache_dir)
        else:
            # The documented per-service in-memory cache: repeat batch
            # submissions against one service reuse solved cells.
            if self._batch_cache is None:
                self._batch_cache = ResultCache()
            cache = self._batch_cache
        sweep = run_sweep(request.spec, cache=cache, workers=request.workers)
        return BatchResponse(sweep=sweep)


def _ppc_gain(point: DesignPoint, baseline: DesignPoint) -> float:
    """Perf-per-cost gain on the weighted group objective."""
    ours = point.weighted_step_time * point.network_cost
    theirs = baseline.weighted_step_time * baseline.network_cost
    return theirs / ours if ours > 0 else 0.0


#: Per-process default service. Worker processes, benchmarks, and the CLI
#: share it so repeated requests against one scenario compile it once.
_DEFAULT_SERVICE: LibraService | None = None


def get_service() -> LibraService:
    """The process-wide default :class:`LibraService` (created on demand)."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = LibraService()
    return _DEFAULT_SERVICE

"""The stateless request/response front end: :class:`LibraService`.

The service is the one true entry point for answering LIBRA questions. It
owns no problem state — every request carries its complete problem
statement as a :class:`~repro.api.scenario.Scenario` — so a single service
instance can serve arbitrarily many interleaved scenarios, and any future
HTTP/queue front end is a thin codec over :meth:`LibraService.submit`.

The service keeps two bounded memos, both keyed on canonical content:

* *compiled engines* — building a :class:`~repro.core.framework.Libra`
  from a scenario (workload construction, symbolic step-time expressions)
  dominates repeat-request latency, so engines are cached on the
  scenario's canonical key. Two structurally identical scenarios —
  whatever their display names or payload field order — share one engine.
* *prior solutions* — the optimum of every successful solve, keyed by
  ``engine × scheme × constraint family`` (the constraint set's canonical
  payload minus the budget scalar). Every solve *writes* its optimum (so
  cold requests seed later continuations), but only a request with
  ``warm_start="auto"`` ever *reads* the memo — with ``warm_start=None``
  (the default) single solves stay cold and bit-reproducible.

Typical session::

    from repro.api import LibraService, OptimizeRequest, build_scenario

    service = LibraService()
    scenario = build_scenario("4D-4K", ["GPT-3"], total_bw_gbps=500)
    response = service.submit(OptimizeRequest(scenario=scenario))
    optimum = response.point           # the optimized DesignPoint
    speedup = response.speedup_over_baseline
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import replace

from repro.analysis import (
    WhatIfMemo,
    bottleneck_structure,
    build_report,
    evaluate_whatifs,
)
from repro.api.requests import (
    WARM_START_AUTO,
    AnalyzeRequest,
    AnalyzeResponse,
    BatchRequest,
    BatchResponse,
    CostrategyRequest,
    CostrategyResponse,
    OptimizeRequest,
    OptimizeResponse,
    request_kind,
)
from repro.api.scenario import Scenario
from repro.core.constraints import ConstraintSet
from repro.core.framework import Libra
from repro.core.results import DesignPoint, Scheme
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.utils.canonical import digest
from repro.utils.errors import (
    AnalysisCacheMiss,
    ConfigurationError,
    OptimizationError,
)
from repro.utils.units import gbps


def _engine_memo_counter():
    return obs_metrics.get_registry().counter(
        obs_names.SERVICE_ENGINE_MEMO,
        "Engine-memo consultations (a miss is a scenario compile).",
        labels=("outcome",),
    )


def _solution_memo_counter():
    return obs_metrics.get_registry().counter(
        obs_names.SERVICE_SOLUTION_MEMO,
        "Solution-memo reads (hit/miss) and writes (store).",
        labels=("outcome",),
    )


def _analyze_request_counter():
    return obs_metrics.get_registry().counter(
        obs_names.ANALYZE_REQUESTS,
        "Analyze requests by how the target point resolved.",
        labels=("source",),
    )


def _analyze_memo_counter():
    return obs_metrics.get_registry().counter(
        obs_names.ANALYZE_MEMO,
        "What-if probes served from a memo instead of re-evaluation.",
        labels=("layer",),
    )


def _analyze_seconds():
    return obs_metrics.get_registry().histogram(
        obs_names.ANALYZE_SECONDS,
        "Wall time of one analyze request end to end.",
    )


def register_analysis_families(registry) -> None:
    """Pre-register the analyze families so scrapes show them at zero.

    Same contract as the serve tier's durability families: a server that
    has not yet analyzed anything still renders all three families, so
    the obs-smoke assertion can tell "never requested" from "renamed
    away". Label values are enumerated up front — they are closed sets.
    """
    requests = registry.counter(
        obs_names.ANALYZE_REQUESTS,
        "Analyze requests by how the target point resolved.",
        labels=("source",),
    )
    for source in ("cache", "inline", "solve"):
        requests.labels(source=source)
    memo = registry.counter(
        obs_names.ANALYZE_MEMO,
        "What-if probes served from a memo instead of re-evaluation.",
        labels=("layer",),
    )
    for layer in ("service", "whatif"):
        memo.labels(layer=layer)
    registry.histogram(
        obs_names.ANALYZE_SECONDS,
        "Wall time of one analyze request end to end.",
    ).labels()


def register_strategy_families(registry) -> None:
    """Pre-register the strategy families so scrapes show them at zero.

    Same contract as :func:`register_analysis_families`: a server that has
    never run a costrategy job still renders both families, so obs-smoke
    can tell "never requested" from "renamed away". The ``outcome`` label
    is a closed set.
    """
    candidates = registry.counter(
        obs_names.STRATEGY_CANDIDATES,
        "Joint-search candidate cells resolved, by outcome.",
        labels=("outcome",),
    )
    for outcome in ("solved", "cached", "error", "pruned"):
        candidates.labels(outcome=outcome)
    registry.histogram(
        obs_names.STRATEGY_SECONDS,
        "Wall time of one joint strategy × bandwidth search.",
    ).labels()


def constraint_family_key(constraints: ConstraintSet) -> str:
    """Content address of a constraint set *minus* its budget scalar.

    Cells of one sweep column differ only in ``total_bandwidth`` (and the
    budget row it implies); everything else — box bounds, caps, orderings,
    extra linear rows — is the *family*. Prior optima are memoized per
    family so a new budget in the same family can warm-start from them.
    """
    payload = constraints.canonical()
    total = payload.pop("total_bandwidth")
    if total is not None:
        ones = [1.0] * constraints.num_dims
        payload["rows"] = [
            row for row in payload["rows"]
            if not (row["coeffs"] == ones and row["upper"] == total)
        ]
    return digest(payload)


class LibraService:
    """Stateless scenario optimizer with bounded engine and solution memos.

    Thread-safe: one lock guards every memo (engines, prior solutions, the
    lazy batch cache), so a single service instance can sit behind a
    worker pool (:class:`repro.serve.JobManager`) or any other concurrent
    caller. Engine compilation runs *outside* the lock — two threads
    racing on one cold key may both compile, but the memo stays
    consistent (last writer wins, bounded eviction preserved) and no
    request ever blocks behind another scenario's compile.

    Args:
        max_compiled: Engine-memo capacity (LRU eviction). Compiled engines
            hold symbolic expression trees, so the bound keeps a
            long-running service's footprint flat.
        max_solutions: Solution-memo capacity (LRU eviction); each entry is
            one bandwidth tuple, so the default is generous.
        max_analyses: Analyze-memo capacity (LRU eviction): whole analyze
            responses keyed on the resolved target's content, so repeat
            what-if sessions against one cached point skip all
            re-computation.
    """

    def __init__(
        self,
        max_compiled: int = 128,
        max_solutions: int = 1024,
        max_analyses: int = 1024,
    ):
        if max_compiled < 1:
            raise ConfigurationError(
                f"max_compiled must be >= 1, got {max_compiled}"
            )
        if max_solutions < 1:
            raise ConfigurationError(
                f"max_solutions must be >= 1, got {max_solutions}"
            )
        if max_analyses < 1:
            raise ConfigurationError(
                f"max_analyses must be >= 1, got {max_analyses}"
            )
        self._max_compiled = max_compiled
        self._max_solutions = max_solutions
        self._max_analyses = max_analyses
        self._lock = threading.Lock()
        self._engines: OrderedDict[str, Libra] = OrderedDict()
        self._solutions: OrderedDict[tuple, tuple[float, ...]] = OrderedDict()
        self._analyses: OrderedDict[str, AnalyzeResponse] = OrderedDict()
        self._whatif_memo = WhatIfMemo()
        self._batch_cache = None  # lazy per-service in-memory ResultCache

    # -- compilation ---------------------------------------------------------

    def engine(self, scenario: Scenario) -> Libra:
        """The compiled engine for a scenario.

        Memoized on :meth:`Scenario.engine_key` — the canonical payload
        *minus constraints*, which compilation never reads — so scenarios
        differing only in budget or caps share one engine.
        """
        key = scenario.engine_key()
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                _engine_memo_counter().labels(outcome="hit").inc()
                return engine
        _engine_memo_counter().labels(outcome="miss").inc()
        # Compile without holding the lock: a concurrent duplicate compile
        # is benign (identical engines; one wins the memo slot), whereas
        # serializing every request behind one compile is not.
        with obs_trace.get_tracer().span("service.compile"):
            engine = scenario.compile()
        with self._lock:
            racer = self._engines.get(key)
            if racer is not None:
                self._engines.move_to_end(key)
                return racer
            self._engines[key] = engine
            if len(self._engines) > self._max_compiled:
                self._engines.popitem(last=False)
        return engine

    @property
    def compiled_count(self) -> int:
        """How many engines the memo currently holds."""
        with self._lock:
            return len(self._engines)

    @property
    def solution_count(self) -> int:
        """How many prior optima the solution memo currently holds."""
        with self._lock:
            return len(self._solutions)

    def clear(self) -> None:
        """Drop every memo: engines, solutions, analyses, the batch cache."""
        with self._lock:
            self._engines.clear()
            self._solutions.clear()
            self._analyses.clear()
            self._whatif_memo = WhatIfMemo()
            self._batch_cache = None

    # -- solution memo -------------------------------------------------------

    def _solution_key(
        self, scenario: Scenario, scheme: Scheme
    ) -> tuple | None:
        if scenario.constraints is None:
            return None
        return (
            scenario.engine_key(),
            scheme.value,
            constraint_family_key(scenario.constraints),
        )

    def _recall_solution(self, key: tuple | None) -> tuple[float, ...] | None:
        if key is None:
            return None
        with self._lock:
            solution = self._solutions.get(key)
            if solution is not None:
                self._solutions.move_to_end(key)
        _solution_memo_counter().labels(
            outcome="hit" if solution is not None else "miss"
        ).inc()
        return solution

    def _store_solution(
        self, key: tuple | None, bandwidths: tuple[float, ...]
    ) -> None:
        if key is None:
            return
        _solution_memo_counter().labels(outcome="store").inc()
        with self._lock:
            self._solutions[key] = bandwidths
            self._solutions.move_to_end(key)
            if len(self._solutions) > self._max_solutions:
                self._solutions.popitem(last=False)

    # -- dispatch ------------------------------------------------------------

    def submit(
        self,
        request: (
            OptimizeRequest | BatchRequest | AnalyzeRequest | CostrategyRequest
        ),
        *,
        should_stop: Callable[[], bool] | None = None,
        on_event: Callable[[dict], None] | None = None,
    ) -> (
        OptimizeResponse | BatchResponse | AnalyzeResponse | CostrategyResponse
    ):
        """Answer one request.

        Dispatches on the request type: single solves, explicit-bandwidth
        evaluations, and EqualBW baselines run through the compiled engine;
        batch requests route through the explore engine and its
        content-addressed cache; analyze requests resolve their target
        point (cached cell, inline bandwidths, or a fresh solve) and run
        the read-only bottleneck-structure analysis over it; costrategy
        requests run the joint strategy × bandwidth search and condense it
        into a frontier.

        Both keyword seams are *runtime* concerns, deliberately not part
        of the (serializable) request value. ``should_stop`` is a
        cooperative cancellation predicate polled between multi-start
        seeds and between sweep cells (a true return raises
        :class:`~repro.utils.errors.JobCancelled`). ``on_event`` receives
        structured progress dicts — the solver's warm-start outcome for
        single solves, per-cell/per-chain events for batches — which
        :class:`repro.serve.JobManager` turns into streamed
        ``ProgressEvent``\\ s.
        """
        # request_kind owns the discriminator (and its rejection message);
        # the wire layer and this dispatch must never disagree.
        kind = request_kind(request)
        obs_metrics.get_registry().counter(
            obs_names.SERVICE_REQUESTS,
            "Requests dispatched through LibraService.submit.",
            labels=("kind",),
        ).labels(kind=kind).inc()
        if kind == "batch":
            return self._submit_batch(
                request, should_stop=should_stop, on_event=on_event
            )
        if kind == "analyze":
            return self._submit_analyze(request, should_stop=should_stop)
        if kind == "costrategy":
            return self._submit_costrategy(
                request, should_stop=should_stop, on_event=on_event
            )
        return self._submit_optimize(
            request, should_stop=should_stop, on_event=on_event
        )

    # -- single requests -----------------------------------------------------

    def _submit_optimize(
        self,
        request: OptimizeRequest,
        should_stop: Callable[[], bool] | None = None,
        on_event: Callable[[dict], None] | None = None,
    ) -> OptimizeResponse:
        scenario = request.scenario
        engine = self.engine(scenario)
        diagnostics = None

        if request.bandwidths_gbps is not None:
            point = engine.evaluate(
                [gbps(b) for b in request.bandwidths_gbps], scheme=request.scheme
            )
        elif request.scheme is Scheme.EQUAL_BW:
            point = engine.equal_bw_point(self._budget(scenario))
        else:
            memo_key = self._solution_key(scenario, request.scheme)
            warm, warm_source = self._resolve_warm_start(request, memo_key)
            point, solver_result = engine.optimize_result(
                request.scheme,
                scenario.constraints,
                kernel=request.kernel,
                warm_start=warm,
                max_starts=request.max_starts,
                should_stop=should_stop,
            )
            self._store_solution(memo_key, point.bandwidths)
            if solver_result is not None:
                diagnostics = {
                    "starts": solver_result.starts,
                    "max_starts": request.max_starts,
                    "warm_start": solver_result.warm_start or "cold",
                    "warm_source": warm_source,
                }
                if on_event is not None:
                    on_event({"type": "solve", **diagnostics})

        baseline = None
        if (
            request.include_baseline
            and scenario.constraints is not None
            and scenario.constraints.total_bandwidth is not None
        ):
            baseline = engine.equal_bw_point(scenario.constraints.total_bandwidth)

        return OptimizeResponse(
            scenario_key=scenario.key(),
            scheme=request.scheme,
            point=point,
            baseline=baseline,
            speedup_over_baseline=(
                None if baseline is None
                else baseline.weighted_step_time / point.weighted_step_time
            ),
            ppc_gain_over_baseline=(
                None if baseline is None else _ppc_gain(point, baseline)
            ),
            diagnostics=diagnostics,
        )

    def _resolve_warm_start(
        self, request: OptimizeRequest, memo_key: tuple | None
    ) -> tuple[tuple[float, ...] | None, str]:
        """The warm seed (bytes/s) a solve request asked for, plus its origin."""
        if request.warm_start is None:
            return None, "none"
        if request.warm_start == WARM_START_AUTO:
            recalled = self._recall_solution(memo_key)
            if recalled is None:
                return None, "memo-miss"
            return recalled, "memo-hit"
        return tuple(gbps(b) for b in request.warm_start), "explicit"

    @staticmethod
    def _budget(scenario: Scenario) -> float:
        if (
            scenario.constraints is None
            or scenario.constraints.total_bandwidth is None
        ):
            raise OptimizationError(
                "EqualBW needs a total-bandwidth budget in the scenario's "
                "constraint set"
            )
        return scenario.constraints.total_bandwidth

    # -- analyze requests ------------------------------------------------------

    def _resolve_analyze_target(
        self,
        request: AnalyzeRequest,
        should_stop: Callable[[], bool] | None,
    ) -> tuple[Scenario, Scheme, tuple[float, ...], str]:
        """Resolve (scenario, scheme, bandwidths bytes/s, source) for analysis.

        The cache path **never solves** — analysis of a sweep cell is
        read-only by contract, so a cache miss is an error telling the
        caller to run the sweep first, not a silent re-solve.
        """
        if request.cell is not None:
            # Lazy explore imports, same circularity rationale as batch.
            from repro.explore.cache import ResultCache
            from repro.explore.executor import point_scenario
            from repro.explore.keys import point_key

            if request.cache_dir is not None:
                cache = ResultCache(request.cache_dir)
            else:
                with self._lock:
                    if self._batch_cache is None:
                        self._batch_cache = ResultCache(max_memory=4096)
                    cache = self._batch_cache
            cached = cache.get(point_key(request.cell))
            if cached is None or not cached.ok:
                raise AnalysisCacheMiss(
                    f"sweep cell {request.cell.label()!r} is not in the "
                    "result cache; analysis is read-only — run the sweep "
                    "first (repro explore / a batch request), then analyze"
                )
            scenario = point_scenario(request.cell)
            bandwidths = tuple(gbps(b) for b in cached.bandwidths_gbps)
            return scenario, request.cell.scheme, bandwidths, "cache"
        scenario = request.scenario
        if request.bandwidths_gbps is not None:
            bandwidths = tuple(gbps(b) for b in request.bandwidths_gbps)
            return scenario, request.scheme, bandwidths, "inline"
        solved = self._submit_optimize(
            OptimizeRequest(
                scenario=scenario,
                scheme=request.scheme,
                include_baseline=False,
            ),
            should_stop=should_stop,
        )
        return scenario, request.scheme, solved.point.bandwidths, "solve"

    def _submit_analyze(
        self,
        request: AnalyzeRequest,
        should_stop: Callable[[], bool] | None = None,
    ) -> AnalyzeResponse:
        started = time.perf_counter()
        tracer = obs_trace.get_tracer()
        with tracer.span("analyze") as span:
            scenario, scheme, bandwidths, source = (
                self._resolve_analyze_target(request, should_stop)
            )
            memo_key = digest(
                {
                    "engine_key": scenario.engine_key(),
                    "constraints": (
                        None if scenario.constraints is None
                        else scenario.constraints.canonical()
                    ),
                    "scheme": scheme.value,
                    "bandwidths": list(bandwidths),
                    "queries": [q.to_dict() for q in request.queries],
                }
            )
            with self._lock:
                memoized = self._analyses.get(memo_key)
                if memoized is not None:
                    self._analyses.move_to_end(memo_key)
            if memoized is not None:
                _analyze_memo_counter().labels(layer="service").inc()
                _analyze_request_counter().labels(source=source).inc()
                _analyze_seconds().observe(time.perf_counter() - started)
                span.set("memo", "hit")
                return replace(memoized, source=source, memo_hit=True)

            engine = self.engine(scenario)
            expression = engine.combined_expression()
            with tracer.span("analyze.structure"):
                structure = bottleneck_structure(
                    expression, bandwidths, scenario.constraints
                )
            with tracer.span("analyze.whatif"):
                whatifs = evaluate_whatifs(
                    expression,
                    bandwidths,
                    request.queries,
                    memo=self._whatif_memo,
                    context=f"{scenario.engine_key()}:{scheme.value}",
                )
            response = AnalyzeResponse(
                scenario_key=scenario.key(),
                scheme=scheme,
                report=build_report(structure, whatifs, scheme=scheme.value),
                source=source,
                memo_hit=False,
                diagnostics={
                    "whatif_memo": self._whatif_memo.stats(),
                    "binding_rows": len(structure.binding_rows()),
                },
            )
            with self._lock:
                self._analyses[memo_key] = response
                self._analyses.move_to_end(memo_key)
                if len(self._analyses) > self._max_analyses:
                    self._analyses.popitem(last=False)
            span.set("memo", "miss")
        _analyze_request_counter().labels(source=source).inc()
        _analyze_seconds().observe(time.perf_counter() - started)
        return response

    # -- batch requests --------------------------------------------------------

    def _submit_batch(
        self,
        request: BatchRequest,
        should_stop: Callable[[], bool] | None = None,
        on_event: Callable[[dict], None] | None = None,
    ) -> BatchResponse:
        # Imported lazily: the explore engine sits *above* the api layer
        # (its spec module pulls scheme aliases from the registry), so a
        # module-level import here would be circular.
        from repro.explore.cache import ResultCache
        from repro.explore.executor import run_sweep

        if request.cache_dir is not None:
            cache = ResultCache(request.cache_dir)
        else:
            # The documented per-service in-memory cache: repeat batch
            # submissions against one service reuse solved cells. Bounded
            # like the other memos — a long-running server must not grow
            # without limit; evicted cells simply re-solve.
            with self._lock:
                if self._batch_cache is None:
                    self._batch_cache = ResultCache(max_memory=4096)
                cache = self._batch_cache
        sweep = run_sweep(
            request.spec,
            cache=cache,
            workers=request.workers,
            on_event=on_event,
            should_stop=should_stop,
            service=self,
            # The service may be driven from a thread pool (repro.serve);
            # forking a multithreaded process can deadlock pool children
            # on locks held across the fork, so batches always spawn.
            mp_context="spawn",
        )
        return BatchResponse(
            sweep=sweep, diagnostics=sweep_diagnostics(sweep, cache=cache)
        )

    # -- costrategy requests ---------------------------------------------------

    def _submit_costrategy(
        self,
        request: CostrategyRequest,
        should_stop: Callable[[], bool] | None = None,
        on_event: Callable[[dict], None] | None = None,
    ) -> CostrategyResponse:
        # Lazy imports: repro.strategy drives this service through the
        # explore layer, so both sit above api and load at call time only.
        from repro.explore.cache import ResultCache
        from repro.strategy.frontier import build_frontier
        from repro.strategy.search import joint_search

        if request.cache_dir is not None:
            cache = ResultCache(request.cache_dir)
        else:
            # Share the batch cache: a costrategy search and a plain batch
            # sweep over the same cells replay each other's results.
            with self._lock:
                if self._batch_cache is None:
                    self._batch_cache = ResultCache(max_memory=4096)
                cache = self._batch_cache
        search = joint_search(
            request.workload,
            request.topology,
            request.budgets_gbps,
            space=request.space,
            scheme=request.scheme,
            dim_caps_gbps=request.dim_caps_gbps,
            cache=cache,
            cross_warm=request.cross_warm,
            service=self,
            should_stop=should_stop,
            on_event=on_event,
        )
        frontier = build_frontier(
            search, attribution=request.attribution, service=self
        )
        return CostrategyResponse(frontier=frontier)


def sweep_diagnostics(sweep, cache=None) -> dict:
    """The batch-response ``diagnostics`` object for one executed sweep.

    Mirrors what ``repro explore --profile`` prints locally so remote
    clients get the same telemetry: duplicate fan-out, the cache split,
    the warm-start hit rate, and the per-stage :class:`SweepProfile`
    timings of this particular execution (wall-clock numbers live here —
    on the response envelope — precisely because they are *not* row
    data and never enter cache keys or row-identity comparisons). With a
    ``cache``, its lifetime :meth:`~repro.explore.cache.ResultCache.stats`
    snapshot rides along under ``"cache"`` (lifetime of the cache object,
    not of this sweep — a shared server-side cache accumulates).
    """
    profile = sweep.profile
    return {
        "cells": len(sweep.results),
        "cache_hits": sweep.cache_hits,
        "solver_calls": sweep.solver_calls,
        "fanout_cells": sweep.fanout_cells,
        "num_errors": sweep.num_errors,
        "warm_hit_rate": 0.0 if profile is None else profile.warm_hit_rate,
        "profile": None if profile is None else profile.to_dict(),
        "cache": None if cache is None else cache.stats(),
    }


def _ppc_gain(point: DesignPoint, baseline: DesignPoint) -> float:
    """Perf-per-cost gain on the weighted group objective."""
    ours = point.weighted_step_time * point.network_cost
    theirs = baseline.weighted_step_time * baseline.network_cost
    return theirs / ours if ours > 0 else 0.0


#: Per-process default service. Worker processes, benchmarks, and the CLI
#: share it so repeated requests against one scenario compile it once.
_DEFAULT_SERVICE: LibraService | None = None


def get_service() -> LibraService:
    """The process-wide default :class:`LibraService` (created on demand)."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = LibraService()
    return _DEFAULT_SERVICE


def reset_service() -> None:
    """Replace the process-wide default service with a fresh one.

    Benchmarks and tests use this to measure (or assert) genuinely cold
    paths — the next :func:`get_service` call builds empty memos.
    """
    global _DEFAULT_SERVICE
    _DEFAULT_SERVICE = None

"""String-keyed registries: the API's extensible plugin surface.

Every name a :class:`~repro.api.scenario.Scenario` file or a CLI flag can
mention resolves through one of the registries here:

* :data:`TOPOLOGIES` — preset network shapes (Table III + Fig. 11, seeded
  from :mod:`repro.topology.presets`); unregistered names fall back to the
  ``RI(4)_FC(8)_…`` notation parser.
* :data:`WORKLOADS` — Table II workload builders, each a pure function of
  the system size (seeded from :mod:`repro.workloads.presets`).
* :data:`COST_MODELS` — named dollar-cost tables (``"table1-default"``).
* :data:`COMPUTE_MODELS` — named NPU compute models (``"A100-75pct"``).
* :data:`LOOPS` — training-loop factories by name.
* :data:`SCHEME_ALIASES` — the scheme spelling map (``"perf"`` →
  :attr:`Scheme.PERF_OPT`), moved here from ``repro.explore.spec`` (which
  re-exports it for backwards compatibility).

User extensions register with a decorator and immediately work everywhere a
name is accepted — scenario files, ``repro explore`` axes, the CLI::

    from repro.api import TOPOLOGIES, WORKLOADS

    @TOPOLOGIES.register("my-fabric")
    def _my_fabric():
        return MultiDimNetwork.from_notation("RI(8)_SW(64)", name="my-fabric")

    @WORKLOADS.register("MyModel")
    def _my_model(num_npus):
        return build_transformer(MY_CONFIG, Parallelism(tp=8, dp=num_npus // 8))

This module sits *below* the explore layer: it imports only topology,
workloads, cost, training, and core — never :mod:`repro.explore`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.results import Scheme
from repro.cost.model import CostModel, default_cost_model
from repro.topology.network import MultiDimNetwork
from repro.topology.presets import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    get_topology,
)
from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.loops import NoOverlapLoop, TPDPOverlapLoop, TrainingLoop
from repro.utils.errors import ConfigurationError
from repro.workloads.presets import build_workload, workload_names
from repro.workloads.workload import Workload


class Registry:
    """A named map from strings to factory callables.

    Args:
        kind: What the registry holds (``"topology"``), used in error
            messages and ``repr``.

    Entries are factories — calling :meth:`build` invokes them — so presets
    stay cheap to import and every lookup returns a fresh (or intentionally
    shared) object under the factory's control.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Callable[..., Any]] = {}

    def register(
        self, name: str, factory: Callable[..., Any] | None = None, *,
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        Raises :class:`ConfigurationError` on duplicate names unless
        ``overwrite=True`` — silent shadowing of a paper preset would be a
        debugging nightmare.
        """

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if not name:
                raise ConfigurationError(f"{self.kind} name must not be empty")
            if name in self._entries and not overwrite:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[name] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for test teardown)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Registered names, in registration order."""
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"


# ---------------------------------------------------------------------------
# Built-in registries, seeded from the paper presets
# ---------------------------------------------------------------------------

#: Preset topologies: ``() -> MultiDimNetwork``.
TOPOLOGIES = Registry("topology")

#: Preset workloads: ``(num_npus: int) -> Workload``.
WORKLOADS = Registry("workload")

#: Cost tables: ``() -> CostModel``.
COST_MODELS = Registry("cost model")

#: Compute models: ``() -> ComputeModel``.
COMPUTE_MODELS = Registry("compute model")

#: Training loops: ``() -> TrainingLoop``.
LOOPS = Registry("training loop")


def _seed_builtins() -> None:
    for name in list(EVALUATION_TOPOLOGIES) + list(REAL_SYSTEM_TOPOLOGIES):
        TOPOLOGIES.register(name, lambda name=name: get_topology(name))
    for name in workload_names():
        WORKLOADS.register(
            name, lambda num_npus, name=name: build_workload(name, num_npus)
        )
    COST_MODELS.register("table1-default", default_cost_model)
    COMPUTE_MODELS.register("A100-75pct", a100_compute_model)
    LOOPS.register(NoOverlapLoop.name, NoOverlapLoop)
    LOOPS.register(TPDPOverlapLoop.name, TPDPOverlapLoop)


_seed_builtins()

#: Every registry by a stable tag, for snapshot/replay across processes.
_ALL_REGISTRIES: dict[str, Registry] = {
    "topologies": TOPOLOGIES,
    "workloads": WORKLOADS,
    "cost_models": COST_MODELS,
    "compute_models": COMPUTE_MODELS,
    "loops": LOOPS,
}

#: The factory each name mapped to right after seeding — an entry is a
#: *user* entry when its name is new OR its factory differs (a builtin
#: overridden with ``overwrite=True`` must replay too, or spawn workers
#: would silently solve the stock preset under the override's cache key).
_BUILTIN_FACTORIES: dict[str, dict[str, Callable[..., Any]]] = {
    tag: {name: registry.get(name) for name in registry.names()}
    for tag, registry in _ALL_REGISTRIES.items()
}


def custom_entries() -> list[tuple[str, str, Callable[..., Any]]]:
    """Snapshot the picklable user-registered entries, for worker replay.

    ``spawn``-ed pool workers re-import this module and get only the
    builtins; the executor ships this snapshot through each worker's
    initializer so dynamically registered names — including builtins
    overridden with ``overwrite=True`` — keep resolving there (exactly
    what ``fork`` used to inherit for free). Factories that do not
    pickle (lambdas, closures) are skipped — they cannot cross a spawn
    boundary at all; such names degrade to per-cell error rows in pool
    workers, same as any unknown name.
    """
    import pickle

    snapshot: list[tuple[str, str, Callable[..., Any]]] = []
    for tag, registry in _ALL_REGISTRIES.items():
        builtins = _BUILTIN_FACTORIES[tag]
        for name in registry.names():
            factory = registry.get(name)
            if builtins.get(name) is factory:
                continue  # the unmodified builtin; workers reseed it
            try:
                pickle.dumps(factory)
            except Exception:  # noqa: BLE001 — unpicklable: cannot ship it
                continue
            snapshot.append((tag, name, factory))
    return snapshot


def install_entries(
    entries: list[tuple[str, str, Callable[..., Any]]],
) -> None:
    """Replay a :func:`custom_entries` snapshot (last write wins)."""
    for tag, name, factory in entries:
        _ALL_REGISTRIES[tag].register(name, factory, overwrite=True)


# ---------------------------------------------------------------------------
# Resolution helpers (registry first, structural fallbacks second)
# ---------------------------------------------------------------------------


def resolve_topology(name_or_notation: str) -> MultiDimNetwork:
    """A network from a registered preset name or raw notation."""
    if name_or_notation in TOPOLOGIES:
        return TOPOLOGIES.build(name_or_notation)
    return MultiDimNetwork.from_notation(name_or_notation)


def resolve_workload(name: str, num_npus: int) -> Workload:
    """A workload from a registered preset name at the given system size."""
    return WORKLOADS.build(name, num_npus)


def resolve_cost_model(name: str) -> CostModel:
    """A cost model from a registered name."""
    return COST_MODELS.build(name)


def resolve_compute_model(name: str) -> ComputeModel:
    """A compute model from a registered name."""
    return COMPUTE_MODELS.build(name)


def resolve_loop(name: str) -> TrainingLoop:
    """A training loop from a registered name."""
    return LOOPS.build(name)


#: CLI / spec-file aliases for the optimization schemes. The enum values
#: themselves (``"PerfOptBW"``) are also accepted by :func:`resolve_scheme`.
SCHEME_ALIASES: dict[str, Scheme] = {
    "perf": Scheme.PERF_OPT,
    "perf-per-cost": Scheme.PERF_PER_COST_OPT,
    "equal": Scheme.EQUAL_BW,
}


def resolve_scheme(value: str | Scheme) -> Scheme:
    """Accept a :class:`Scheme`, an alias (``"perf"``), or an enum value."""
    if isinstance(value, Scheme):
        return value
    alias = SCHEME_ALIASES.get(str(value).lower())
    if alias is not None:
        return alias
    for scheme in Scheme:
        if scheme.value == value:
            return scheme
    raise ConfigurationError(
        f"unknown scheme {value!r}; expected one of {sorted(SCHEME_ALIASES)}"
    )

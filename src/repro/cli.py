"""Command-line interface for the LIBRA reproduction.

Every subcommand is a thin request builder over the
:mod:`repro.api` Scenario/Service layer::

    repro-libra topologies
    repro-libra workloads
    repro-libra optimize --topology 4D-4K --workload GPT-3 \\
        --total-bw 500 --scheme perf
    repro-libra optimize --scenario gpt3.json --scheme perf-per-cost --json
    repro-libra optimize --scenario - < gpt3.json
    repro-libra scenario --topology 4D-4K --workload GPT-3 \\
        --total-bw 500 --output gpt3.json
    repro-libra serve --port 8350 --workers 2
    repro-libra serve --port 8350 --log-level info --log-json
    repro-libra submit --scenario gpt3.json --events
    repro-libra submit --url http://127.0.0.1:8350 --scenario gpt3.json --json
    repro-libra submit --url http://127.0.0.1:8350 --spec sweep.json --no-wait
    repro-libra jobs --url http://127.0.0.1:8350
    repro-libra jobs --url http://127.0.0.1:8350 --events job-abc123 --follow
    repro-libra sweep --topology 4D-4K --workload MSFT-1T \\
        --bw 100 --bw 500 --bw 1000
    repro-libra explore --workload GPT-3 --workload Turing-NLG \\
        --topology 3D-4K --topology 4D-4K --bw 100 --bw 300 --bw 500 \\
        --bw 1000 --scheme perf --scheme perf-per-cost \\
        --workers 4 --cache-dir .repro-cache --output results.json
    repro-libra explore --spec sweep.json --cache-dir .repro-cache
    repro-libra explore --spec sweep.json --profile --no-continuation
    repro-libra explore --spec sweep.json --trace trace.json
    repro-libra obs trace trace.json
    repro-libra simulate --topology 4D-4K --workload GPT-3 \\
        --bandwidths 225,138,104,33 --themis
    repro-libra cost --topology 4D-4K --bandwidths 125,125,125,125
    repro-libra bench --workload GPT-3 --topology 4D-4K --total-bw 500 \\
        --output BENCH_solver.json
    repro-libra bench --quick
    repro-libra bench --sweep --min-speedup 2.0

``--json`` on optimize / sweep / cost / simulate emits the machine-readable
response payload instead of the human report. Bandwidths are GB/s on the
command line (converted at the boundary; the library itself is bytes/s
throughout).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api.registry import SCHEME_ALIASES as _SCHEMES
from repro.api.requests import OptimizeRequest
from repro.api.scenario import (
    Scenario,
    build_scenario,
    load_scenario,
    save_scenario,
)
from repro.api.service import get_service
from repro.core import ConstraintSet, Scheme
from repro.cost import cost_breakdown, default_cost_model
from repro.topology import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    MultiDimNetwork,
    get_topology,
)
from repro.utils import gbps
from repro.utils.errors import ReproError
from repro.workloads import build_workload, load_workload_file, workload_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-libra",
        description="Workload-aware multi-dimensional network bandwidth optimization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list preset topologies (Table III, Fig. 11)")
    sub.add_parser("workloads", help="list preset workloads (Table II)")

    optimize = sub.add_parser("optimize", help="optimize one design point")
    optimize.add_argument(
        "--scenario", metavar="FILE",
        help="scenario JSON file, or - for stdin "
             "(replaces --topology/--workload/--total-bw)",
    )
    _add_target_args(optimize, required=False)
    optimize.add_argument(
        "--total-bw", type=float,
        help="aggregate bandwidth budget per NPU, GB/s "
             "(required without --scenario)",
    )
    optimize.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default="perf",
        help="optimization objective (default: perf)",
    )
    optimize.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth, e.g. --cap 3:50 (repeatable)",
    )
    optimize.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the OptimizeResponse payload as JSON",
    )

    analyze = sub.add_parser(
        "analyze",
        help="bottleneck-structure analysis of a design point: binding "
             "set, transfer gradients, what-if probes",
    )
    analyze.add_argument(
        "--scenario", metavar="FILE",
        help="scenario JSON file, or - for stdin "
             "(replaces --topology/--workload/--total-bw)",
    )
    _add_target_args(analyze, required=False)
    analyze.add_argument(
        "--total-bw", type=float,
        help="aggregate bandwidth budget per NPU, GB/s "
             "(required without --scenario)",
    )
    analyze.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default="perf",
        help="optimization objective (default: perf)",
    )
    analyze.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth, e.g. --cap 3:50 (repeatable)",
    )
    analyze.add_argument(
        "--bandwidths", metavar="GBPS,...",
        help="analyze this explicit allocation (comma-separated GB/s) "
             "instead of solving for the optimum",
    )
    analyze.add_argument(
        "--from-sweep", metavar="CACHE_DIR",
        help="read the point from a sweep result cache (the cell named by "
             "--topology/--workload/--total-bw/--scheme/--cap) instead of "
             "solving; errors if the cell was never swept — analysis "
             "never runs the solver",
    )
    analyze.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the AnalyzeResponse payload as JSON",
    )

    costrategy = sub.add_parser(
        "costrategy",
        help="joint parallelization-strategy × bandwidth co-optimization: "
             "enumerate (tp, cp, ep, pp, dp) factorizations of the node "
             "count, solve each across the budgets with warm-start reuse, "
             "and report the strategy frontier",
    )
    costrategy.add_argument(
        "--workload", required=True, metavar="NAME",
        help="preset workload name (the strategy axis re-parallelizes it)",
    )
    costrategy.add_argument(
        "--topology", required=True, metavar="NAME",
        help="preset topology name or notation "
             "(e.g. 3D-512 or SW(16)_SW(8)_SW(4))",
    )
    costrategy.add_argument(
        "--bw", action="append", type=float, required=True, metavar="GBPS",
        help="bandwidth budget in GB/s (repeatable)",
    )
    costrategy.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default="perf",
        help="optimization objective for every cell (default: perf)",
    )
    costrategy.add_argument(
        "--max-tp", type=int, default=None, metavar="N",
        help="largest tensor-parallel degree (default: the node count)",
    )
    costrategy.add_argument(
        "--max-cp", type=int, default=1, metavar="N",
        help="largest context-parallel degree (default 1 = axis disabled)",
    )
    costrategy.add_argument(
        "--max-ep", type=int, default=1, metavar="N",
        help="largest expert-parallel degree (default 1 = axis disabled)",
    )
    costrategy.add_argument(
        "--max-pp", type=int, default=1, metavar="N",
        help="largest pipeline-parallel degree (default 1 = axis disabled)",
    )
    costrategy.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth at every cell (repeatable)",
    )
    costrategy.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache; re-runs replay solved cells",
    )
    costrategy.add_argument(
        "--no-cross-warm", action="store_true",
        help="do not seed strategies from their predecessor's optima "
             "(independent columns; the reference path)",
    )
    costrategy.add_argument(
        "--no-attribution", action="store_true",
        help="skip the per-strategy binding-dimension analysis",
    )
    costrategy.add_argument(
        "--progress", action="store_true",
        help="print one line per resolved strategy × budget cell",
    )
    costrategy.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the CostrategyResponse payload as JSON",
    )
    costrategy.add_argument(
        "--output", metavar="FILE",
        help="write the frontier JSON artifact here",
    )

    scenario = sub.add_parser(
        "scenario",
        help="build a scenario JSON file from flags (input to optimize --scenario)",
    )
    _add_target_args(scenario)
    scenario.add_argument(
        "--total-bw", type=float,
        help="aggregate bandwidth budget per NPU, GB/s",
    )
    scenario.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth (repeatable)",
    )
    scenario.add_argument(
        "--loop", default="no-overlap",
        help="training loop registry name (default: no-overlap)",
    )
    scenario.add_argument(
        "--output", metavar="FILE",
        help="write the scenario here (default: stdout)",
    )

    sweep = sub.add_parser("sweep", help="sweep bandwidth budgets")
    _add_target_args(sweep)
    sweep.add_argument(
        "--bw", action="append", type=float, required=True, metavar="GBPS",
        help="budget point in GB/s (repeatable)",
    )
    sweep.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the sweep rows as JSON",
    )

    explore = sub.add_parser(
        "explore",
        help="design-space exploration: parallel, cached grid sweeps "
             "with Pareto analysis",
    )
    explore.add_argument(
        "--spec", help="JSON sweep-spec file (replaces the axis flags)"
    )
    explore.add_argument(
        "--workload", action="append", default=[], metavar="NAME",
        help="workload axis entry (repeatable)",
    )
    explore.add_argument(
        "--topology", action="append", default=[], metavar="NAME",
        help="topology axis entry: preset name or notation (repeatable)",
    )
    explore.add_argument(
        "--bw", action="append", type=float, default=[], metavar="GBPS",
        help="bandwidth-budget axis entry in GB/s (repeatable)",
    )
    explore.add_argument(
        "--scheme", action="append", choices=sorted(_SCHEMES), default=[],
        help="scheme axis entry (repeatable; default: perf)",
    )
    explore.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth at every grid cell (repeatable)",
    )
    explore.add_argument(
        "--workers", type=int, default=1,
        help="solve cells across N worker processes (default 1 = inline)",
    )
    explore.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache; re-runs only solve new cells",
    )
    explore.add_argument(
        "--output", metavar="FILE",
        help="write the JSON results artifact here",
    )
    explore.add_argument(
        "--pareto", default="network_cost:step_time_ms", metavar="X:Y",
        help="frontier metrics (default network_cost:step_time_ms); "
             "metrics: total_bw_gbps, step_time_ms, network_cost, speedup, ppc_gain",
    )
    explore.add_argument(
        "--progress", action="store_true",
        help="print one line per resolved grid cell",
    )
    explore.add_argument(
        "--profile", action="store_true",
        help="print a per-stage timing summary (cache lookup / solve / "
             "assembly) and the warm-start hit rate",
    )
    explore.add_argument(
        "--no-continuation", action="store_true",
        help="solve every cell from cold seeds instead of propagating "
             "warm starts through budget chains (the reference path)",
    )
    explore.add_argument(
        "--trace", metavar="FILE",
        help="record sweep/chain/cell/solve spans and write a Chrome "
             "trace-event JSON file (open in chrome://tracing or Perfetto; "
             "summarize with 'obs trace FILE')",
    )

    simulate = sub.add_parser(
        "simulate", help="chunk-level simulation of one training step"
    )
    _add_target_args(simulate)
    simulate.add_argument(
        "--bandwidths", required=True,
        help="comma-separated per-dimension bandwidths, GB/s",
    )
    simulate.add_argument(
        "--chunks", type=int, default=64, help="chunks per collective (default 64)"
    )
    simulate.add_argument(
        "--themis", action="store_true", help="enable the Themis chunk scheduler"
    )
    simulate.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the simulation report as JSON",
    )

    cost = sub.add_parser("cost", help="price a bandwidth configuration")
    cost.add_argument("--topology", required=True)
    cost.add_argument(
        "--bandwidths", required=True,
        help="comma-separated per-dimension bandwidths, GB/s",
    )
    cost.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the cost breakdown as JSON",
    )

    bench = sub.add_parser(
        "bench",
        help="performance microbenchmarks: solver kernels, memoization, "
             "sweep engine (writes BENCH_solver.json)",
    )
    bench.add_argument(
        "--workload", action="append", default=[], metavar="NAME",
        help="workload(s) for the solver hot path (default: GPT-3; "
             "repeat for a group objective)",
    )
    bench.add_argument(
        "--topology", default="4D-4K", help="target topology (default 4D-4K)"
    )
    bench.add_argument(
        "--total-bw", type=float, default=500.0,
        help="bandwidth budget in GB/s (default 500)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repetitions (default 3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="seconds-scale smoke configuration (Turing-NLG on 3D-512), "
             "overrides the other target flags",
    )
    bench.add_argument(
        "--sweep", action="store_true",
        help="benchmark whole sweep grids instead of single solves: "
             "continuation (warm) vs cold, writes BENCH_sweep.json",
    )
    bench.add_argument(
        "--analyze", action="store_true",
        help="benchmark cached what-if probes against a swept cell "
             "(p50/p95 latency), writes BENCH_analyze.json",
    )
    bench.add_argument(
        "--strategy", action="store_true",
        help="benchmark the joint strategy × bandwidth search: warm-start "
             "reuse vs independent cold columns, writes BENCH_strategy.json",
    )
    bench.add_argument(
        "--min-reuse", type=float, default=0.0,
        help="with --strategy: fail (exit 3) if the warm run's solver-call "
             "reduction vs cold is below this ratio (default 0 = report only)",
    )
    bench.add_argument(
        "--probes", type=int, default=200,
        help="with --analyze: memo-served probes to sample (default 200)",
    )
    bench.add_argument(
        "--max-p95-ms", type=float, default=0.0,
        help="with --analyze: fail (exit 3) if the cached-probe p95 "
             "exceeds this many milliseconds (default 0 = report only)",
    )
    bench.add_argument(
        "--bw", action="append", type=float, default=[], metavar="GBPS",
        help="budget axis entry for --sweep, GB/s (repeatable)",
    )
    bench.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="with --sweep: fail (exit 3) if warm/cold speedup is below "
             "this floor (default 0 = report only)",
    )
    bench.add_argument(
        "--output", default=None, metavar="FILE",
        help="artifact path (default BENCH_solver.json, or "
             "BENCH_sweep.json with --sweep)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP job server (async submit/poll/stream/cancel "
             "over POST /v3/jobs)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8350, help="bind port (default 8350)"
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent jobs (default 2; batch jobs parallelize "
             "internally via their own 'workers' field)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=256,
        help="job-table bound; submissions beyond it evict finished jobs "
             "or are refused (default 256)",
    )
    serve.add_argument(
        "--cache-root", metavar="DIR",
        help="accept client-supplied batch cache_dir names, sandboxed "
             "under this directory (without it they are rejected)",
    )
    serve.add_argument(
        "--state-dir", metavar="DIR",
        help="persist jobs and their event logs under this directory; on "
             "restart, unfinished jobs are recovered and re-run (pair "
             "with --cache-root so recovered sweeps resume from "
             "already-solved cells instead of starting over)",
    )
    serve.add_argument(
        "--fleet", action="store_true",
        help="join a multi-server fleet on the shared --state-dir "
             "(required): jobs are claimed via lease files so each runs "
             "on exactly one member, dead members' jobs are reclaimed, "
             "and SIGTERM drains gracefully (pair with a shared "
             "--cache-root so reclaimed sweeps resume from cached cells)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="fleet lease time-to-live: how long a member can go "
             "without heartbeating before peers take its jobs over "
             "(default 15; renewals run every ttl/3)",
    )
    serve.add_argument(
        "--fleet-poll", type=float, default=1.0, metavar="SECONDS",
        help="fleet scan interval for peer-job mirroring and stale-"
             "lease takeover (default 1)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="shorthand for --log-level debug (per-request wire detail)",
    )
    serve.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="structured-log threshold on stderr (default: info; the "
             "REPRO_LOG environment variable sets the same thing)",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of the human format",
    )

    obs = sub.add_parser(
        "obs", help="observability utilities (trace summaries)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_trace_cmd = obs_sub.add_parser(
        "trace",
        help="summarize a Chrome trace file written by explore --trace",
    )
    obs_trace_cmd.add_argument(
        "file", metavar="FILE", help="trace-event JSON file"
    )
    obs_trace_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the per-span aggregates as JSON",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a job: to a remote serve endpoint (--url) or an "
             "in-process queue, from the same scenario/spec files",
    )
    submit.add_argument(
        "--url", metavar="URL",
        help="serve endpoint (e.g. http://127.0.0.1:8350); omitted = "
             "run through an in-process job queue",
    )
    submit.add_argument(
        "--scenario", metavar="FILE",
        help="scenario JSON file, or - for stdin "
             "(replaces --topology/--workload/--total-bw)",
    )
    _add_target_args(submit, required=False)
    submit.add_argument(
        "--total-bw", type=float,
        help="aggregate bandwidth budget per NPU, GB/s",
    )
    submit.add_argument(
        "--scheme", choices=sorted(_SCHEMES), default=None,
        help="optimization objective (default: perf; a spec file carries "
             "its own schemes axis)",
    )
    submit.add_argument(
        "--cap", action="append", default=[], metavar="DIM:GBPS",
        help="cap one dimension's bandwidth (repeatable)",
    )
    submit.add_argument(
        "--spec", metavar="FILE",
        help="sweep-spec JSON file: submit a batch (sweep) job instead "
             "of a single optimize",
    )
    submit.add_argument(
        "--batch-workers", type=int, default=1,
        help="with --spec: the sweep's process-pool width (default 1)",
    )
    submit.add_argument(
        "--cache-dir", metavar="DIR",
        help="with --spec: content-addressed result cache the executing "
             "process should use (server-side path with --url)",
    )
    submit.add_argument(
        "--events", action="store_true",
        help="print progress events while waiting",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="with --url: print the job envelope and return without "
             "waiting (an in-process queue dies with the CLI, so local "
             "submissions always wait)",
    )
    submit.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the response payload (or job envelope with --no-wait) "
             "as JSON",
    )

    jobs = sub.add_parser(
        "jobs", help="inspect a serve endpoint's job table"
    )
    jobs.add_argument(
        "--url", required=True, metavar="URL",
        help="serve endpoint (e.g. http://127.0.0.1:8350)",
    )
    jobs.add_argument(
        "--job", metavar="ID", help="show one job's envelope (with result)"
    )
    jobs.add_argument("--cancel", metavar="ID", help="cancel one job")
    jobs.add_argument(
        "--events", metavar="ID", help="print one job's event log"
    )
    jobs.add_argument(
        "--follow", action="store_true",
        help="with --events: stream live until the job finishes",
    )
    jobs.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON",
    )
    return parser


def _add_target_args(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument(
        "--topology", required=required, help="preset name or notation"
    )
    target = parser.add_mutually_exclusive_group(required=required)
    target.add_argument("--workload", help="preset workload name (Table II)")
    target.add_argument("--workload-file", help="path to a text workload file")


def _resolve_network(name: str) -> MultiDimNetwork:
    if name in EVALUATION_TOPOLOGIES or name in REAL_SYSTEM_TOPOLOGIES:
        return get_topology(name)
    return MultiDimNetwork.from_notation(name)


def _resolve_workload(args: argparse.Namespace, network: MultiDimNetwork):
    if args.workload_file:
        return load_workload_file(args.workload_file)
    return build_workload(args.workload, network.num_npus)


def _target_scenario(
    args: argparse.Namespace, total_bw_gbps: float | None
) -> Scenario:
    """Build the scenario the --topology/--workload[-file] flags describe."""
    if args.workload_file:
        workloads = [load_workload_file(args.workload_file)]
    else:
        workloads = [args.workload]
    return build_scenario(
        topology=args.topology,
        workloads=workloads,
        total_bw_gbps=total_bw_gbps,
        dim_caps_gbps=_parse_caps(getattr(args, "cap", [])),
        loop=getattr(args, "loop", "no-overlap"),
    )


def _parse_bandwidths(text: str, num_dims: int) -> list[float]:
    values = [float(part) for part in text.split(",")]
    if len(values) != num_dims:
        raise ReproError(
            f"expected {num_dims} bandwidths, got {len(values)} in {text!r}"
        )
    return [gbps(value) for value in values]


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _cmd_topologies(_args: argparse.Namespace) -> int:
    print("Table III evaluation topologies:")
    for name, notation in EVALUATION_TOPOLOGIES.items():
        network = get_topology(name)
        print(f"  {name:<10} {notation:<28} {network.num_npus:>5} NPUs")
    print("\nFig. 11 real systems:")
    for name, notation in REAL_SYSTEM_TOPOLOGIES.items():
        print(f"  {name:<20} {notation}")
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    print("Table II workloads (shown at 4,096 NPUs):")
    for name in workload_names():
        workload = build_workload(name, 4096)
        print(f"  {workload}")
    return 0


def _read_scenario(source: str) -> Scenario:
    """Load a scenario from a file path, or from stdin when ``source`` is ``-``.

    Malformed stdin payloads fail exactly like malformed files: a located
    :class:`~repro.api.scenario.ScenarioValidationError` (a
    :class:`ReproError`), which :func:`main` turns into exit code 2.
    """
    if source != "-":
        return load_scenario(source)
    try:
        payload = json.load(sys.stdin)
    except json.JSONDecodeError as exc:
        raise ReproError(f"scenario on stdin is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ReproError(
            f"scenario on stdin must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return Scenario.from_dict(payload)


def _optimize_scenario(args: argparse.Namespace) -> Scenario:
    """Resolve the optimize/submit flags into one scenario."""
    if args.scenario:
        if args.topology or args.workload or args.workload_file or args.cap:
            raise ReproError(
                "--scenario replaces the target flags; drop "
                "--topology/--workload/--workload-file/--cap or edit the file"
            )
        scenario = _read_scenario(args.scenario)
        has_budget = (
            scenario.constraints is not None
            and scenario.constraints.total_bandwidth is not None
        )
        if args.total_bw is not None:
            if has_budget:
                raise ReproError(
                    "the scenario file already carries a total-bandwidth "
                    "budget; drop --total-bw or edit the file"
                )
            # Augment in place so caps/orderings the file carries survive.
            constraints = scenario.constraints or ConstraintSet(
                scenario.network.num_dims
            )
            constraints.with_total_bandwidth(gbps(args.total_bw))
            scenario = scenario.with_constraints(constraints)
        elif not has_budget:
            raise ReproError(
                "the scenario has no total-bandwidth budget; pass --total-bw"
            )
        return scenario
    if not (args.topology and (args.workload or args.workload_file)):
        raise ReproError(
            "optimize needs either --scenario or --topology plus "
            "--workload/--workload-file"
        )
    if args.total_bw is None:
        raise ReproError("--total-bw is required without --scenario")
    return _target_scenario(args, args.total_bw)


def _print_optimize_response(response, as_json: bool) -> int:
    """Render one OptimizeResponse — the optimize and submit paths share it
    so local, queued, and remote execution print identically."""
    if as_json:
        print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
        return 0
    print(response.point.describe())
    if response.baseline is not None:
        print(response.baseline.describe())
        print(
            f"speedup over EqualBW:       "
            f"{response.speedup_over_baseline:.3f}x"
        )
        print(
            f"perf-per-cost over EqualBW: "
            f"{response.ppc_gain_over_baseline:.3f}x"
        )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    scenario = _optimize_scenario(args)
    response = get_service().submit(
        OptimizeRequest(scenario=scenario, scheme=_SCHEMES[args.scheme])
    )
    return _print_optimize_response(response, args.as_json)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import format_report
    from repro.api.requests import AnalyzeRequest

    if args.from_sweep:
        from repro.explore.spec import ExplorationPoint

        if args.scenario or args.workload_file or args.bandwidths:
            raise ReproError(
                "--from-sweep names a cached sweep cell by "
                "--topology/--workload/--total-bw; drop "
                "--scenario/--workload-file/--bandwidths"
            )
        if not (args.topology and args.workload and args.total_bw):
            raise ReproError(
                "--from-sweep needs --topology, --workload, and --total-bw "
                "to name the cell"
            )
        request = AnalyzeRequest(
            cell=ExplorationPoint(
                workload=args.workload,
                topology=args.topology,
                total_bw_gbps=args.total_bw,
                scheme=_SCHEMES[args.scheme],
                dim_caps_gbps=_parse_caps(args.cap),
            ),
            cache_dir=args.from_sweep,
        )
    else:
        scenario = _optimize_scenario(args)
        bandwidths = None
        if args.bandwidths:
            bandwidths = tuple(
                float(part) for part in args.bandwidths.split(",")
            )
        request = AnalyzeRequest(
            scenario=scenario,
            scheme=_SCHEMES[args.scheme],
            bandwidths_gbps=bandwidths,
        )
    response = get_service().submit(request)
    if args.as_json:
        print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
        return 0
    print(format_report(response.report))
    memo = " (memo hit)" if response.memo_hit else ""
    print(f"\npoint resolved from: {response.source}{memo}")
    return 0


def _cmd_costrategy(args: argparse.Namespace) -> int:
    from repro.api.requests import CostrategyRequest
    from repro.strategy import StrategySpace, strategy_slug

    request = CostrategyRequest(
        workload=args.workload,
        topology=args.topology,
        budgets_gbps=tuple(args.bw),
        scheme=_SCHEMES[args.scheme],
        space=StrategySpace(
            max_tp=args.max_tp,
            max_cp=args.max_cp,
            max_ep=args.max_ep,
            max_pp=args.max_pp,
        ),
        dim_caps_gbps=_parse_caps(args.cap),
        cache_dir=args.cache_dir,
        cross_warm=not args.no_cross_warm,
        attribution=not args.no_attribution,
    )

    def on_event(event: dict) -> None:
        if args.progress and event.get("type") == "cell":
            print(
                f"[{event['done']}/{event['total']}] "
                f"{event['status']:<6} {event['label']}"
            )

    response = get_service().submit(request, on_event=on_event)
    frontier = response.frontier
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(frontier.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.as_json:
        print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
        return 0

    diag = frontier.diagnostics
    print(
        f"{frontier.workload} on {frontier.topology} — "
        f"{diag.get('strategies', len(frontier.runs))} strategies "
        f"({diag.get('pruned', 0)} pruned) × "
        f"{len(frontier.budgets_gbps)} budgets"
    )
    print(f"\n{'BW (GB/s)':>10}  {'best strategy':<24} {'step (ms)':>10}  {'cost':>12}")
    for cell in frontier.best_per_budget:
        print(
            f"{cell.budget_gbps:>10.0f}  "
            f"{strategy_slug(cell.strategy):<24} "
            f"{cell.step_time_ms:>10.3f}  {cell.network_cost:>12.1f}"
        )
    if frontier.attributions:
        print("\nbinding dimensions at each strategy's best cell:")
        for attr in frontier.attributions:
            dims = ", ".join(str(d) for d in attr.binding_dims) or "none"
            print(
                f"  {strategy_slug(attr.strategy):<24} binding: {dims} "
                f"(most valuable: dim {attr.most_valuable_dim})"
            )
    print(
        f"\ncells: {diag.get('cells', 0)} "
        f"(solved {diag.get('solved', 0)}, cached {diag.get('cached', 0)}, "
        f"errors {diag.get('errors', 0)}); "
        f"warm-start hit rate {diag.get('warm_hit_rate', 0.0):.0%} "
        f"({diag.get('cross_warm_accepted', 0)} across strategies); "
        f"pareto cells: {len(frontier.pareto)}"
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    scenario = _target_scenario(args, args.total_bw)
    if args.output:
        save_scenario(scenario, args.output)
        print(f"wrote {args.output} (key {scenario.key()[:12]}…)")
    else:
        print(json.dumps(scenario.to_dict(), indent=1, sort_keys=True))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    service = get_service()
    rows = []
    for budget in args.bw:
        scenario = _target_scenario(args, budget)
        perf = service.submit(
            OptimizeRequest(scenario=scenario, scheme=Scheme.PERF_OPT)
        )
        ppc = service.submit(
            OptimizeRequest(scenario=scenario, scheme=Scheme.PERF_PER_COST_OPT)
        )
        rows.append((budget, perf, ppc))
    if args.as_json:
        payload = [
            {
                "total_bw_gbps": budget,
                "perf": perf.to_dict(),
                "perf_per_cost": ppc.to_dict(),
            }
            for budget, perf, ppc in rows
        ]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(f"{'BW (GB/s)':>10}  {'PerfOpt speedup':>16}  {'PerfPerCost ppc':>16}")
    for budget, perf, ppc in rows:
        print(
            f"{budget:>10.0f}  {perf.speedup_over_baseline:>15.3f}x "
            f"{ppc.ppc_gain_over_baseline:>15.3f}x"
        )
    return 0


def _parse_caps(caps: Sequence[str]) -> tuple[tuple[int, float], ...]:
    parsed = []
    for cap in caps:
        dim_text, _, cap_text = cap.partition(":")
        try:
            parsed.append((int(dim_text), float(cap_text)))
        except ValueError:
            raise ReproError(
                f"malformed cap {cap!r}; expected DIM:GBPS, e.g. 3:50"
            ) from None
    return tuple(parsed)


def _explore_spec(args: argparse.Namespace):
    from repro.explore import SweepSpec, load_sweep_spec

    if args.spec:
        if args.workload or args.topology or args.bw or args.scheme or args.cap:
            raise ReproError(
                "--spec replaces the axis flags; drop "
                "--workload/--topology/--bw/--scheme/--cap or edit the spec file"
            )
        return load_sweep_spec(args.spec)
    if not (args.workload and args.topology and args.bw):
        raise ReproError(
            "explore needs either --spec or at least one --workload, "
            "--topology, and --bw"
        )
    return SweepSpec(
        workloads=tuple(args.workload),
        topologies=tuple(args.topology),
        bandwidths_gbps=tuple(args.bw),
        schemes=tuple(args.scheme) or ("perf",),
        dim_caps_gbps=_parse_caps(args.cap),
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import (
        ENGINE_VERSION,
        ResultCache,
        pareto_frontier,
        run_sweep,
        summary_rows,
    )

    from repro.explore.records import METRICS

    spec = _explore_spec(args)
    x_metric, _, y_metric = args.pareto.partition(":")
    if not x_metric or not y_metric:
        raise ReproError(f"malformed --pareto {args.pareto!r}; expected X:Y")
    for metric in (x_metric, y_metric):
        if metric not in METRICS:
            # Reject before solving — a bad axis should not cost a sweep.
            raise ReproError(
                f"unknown Pareto metric {metric!r}; known: {sorted(METRICS)}"
            )

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    progress = None
    if args.progress:
        def progress(done: int, total: int, result) -> None:
            status = "cached" if result.from_cache else (
                "error" if not result.ok else "solved"
            )
            print(f"[{done}/{total}] {result.point.label()}: {status}")

    tracer = None
    if args.trace:
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            sweep = run_sweep(
                spec,
                cache=cache,
                workers=args.workers,
                progress=progress,
                continuation=not args.no_continuation,
            )
    else:
        sweep = run_sweep(
            spec,
            cache=cache,
            workers=args.workers,
            progress=progress,
            continuation=not args.no_continuation,
        )

    print(
        f"{'workload':<12} {'topology':<10} {'scheme':<17} {'BW':>6}  "
        f"{'step (ms)':>10}  {'cost ($)':>14}  {'speedup':>8}  {'ppc gain':>8}"
    )
    for result in sweep.results:
        point = result.point
        prefix = (
            f"{point.workload_name:<12} {point.topology:<10} "
            f"{point.scheme.value:<17} {point.total_bw_gbps:>6.0f}"
        )
        if not result.ok:
            print(f"{prefix}  ERROR: {result.error}")
            continue
        suffix = " (cached)" if result.from_cache else ""
        print(
            f"{prefix}  {result.step_time_ms:>10.3f}  "
            f"{result.network_cost:>14,.0f}  {result.speedup_over_equal:>7.3f}x "
            f"{result.ppc_gain_over_equal:>7.3f}x{suffix}"
        )

    frontier = pareto_frontier(sweep.results, x=x_metric, y=y_metric)
    print(f"\nPareto frontier ({x_metric} vs {y_metric}): "
          f"{len(frontier)} of {len(sweep.ok_results())} points")
    for result in frontier:
        print(
            f"  {result.point.label():<50} "
            f"{x_metric}={result.metric(x_metric):,.3f} "
            f"{y_metric}={result.metric(y_metric):,.3f}"
        )

    print(
        f"\ncache: {sweep.cache_hits} hits / {sweep.cache_misses} misses "
        f"({sweep.hit_rate:.1%} hit rate), solver calls: {sweep.solver_calls}, "
        f"duplicate fan-out: {sweep.fanout_cells}, errors: {sweep.num_errors}"
    )
    if args.profile and sweep.profile is not None:
        print()
        print(sweep.profile.format())

    if tracer is not None:
        tracer.write(args.trace)
        print(
            f"wrote {args.trace} ({len(tracer.spans())} spans; "
            f"inspect with 'obs trace {args.trace}')"
        )

    if args.output:
        artifact = {
            "engine_version": ENGINE_VERSION,
            "spec": spec.to_dict(),
            "sweep": sweep.to_dict(),
            "pareto": {
                "x": x_metric,
                "y": y_metric,
                "points": [result.to_dict() for result in frontier],
            },
            "summary": [list(row) for row in summary_rows(sweep.results)],
        }
        with open(args.output, "w") as handle:
            json.dump(artifact, handle, indent=1, sort_keys=True)
        print(f"wrote {args.output}")

    return 2 if sweep.results and sweep.num_errors == len(sweep.results) else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.runtime import ThemisScheduler
    from repro.simulator import simulate_training_step

    network = _resolve_network(args.topology)
    workload = _resolve_workload(args, network)
    bandwidths = _parse_bandwidths(args.bandwidths, network.num_dims)
    factory = ThemisScheduler if args.themis else None
    step = simulate_training_step(
        workload, network, bandwidths, num_chunks=args.chunks,
        scheduler_factory=factory,
    )
    if args.as_json:
        payload = {
            "step_time_s": float(step.total_time),
            "compute_time_s": float(step.compute_time),
            "comm_time_s": float(step.comm_time),
            "per_dim_utilization": [
                float(u) for u in step.comm_report.per_dim_utilization
            ],
            "aggregate_utilization": float(
                step.comm_report.aggregate_utilization
            ),
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    utils = ", ".join(f"{u:.2f}" for u in step.comm_report.per_dim_utilization)
    print(f"step time:    {step.total_time * 1e3:.3f} ms")
    print(f"compute time: {step.compute_time * 1e3:.3f} ms")
    print(f"comm time:    {step.comm_time * 1e3:.3f} ms")
    print(f"per-dim utilization: [{utils}]")
    print(f"aggregate BW utilization: {step.comm_report.aggregate_utilization:.3f}")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    network = _resolve_network(args.topology)
    bandwidths = _parse_bandwidths(args.bandwidths, network.num_dims)
    model = default_cost_model()
    entries = cost_breakdown(network, bandwidths, model)
    if args.as_json:
        payload = {
            "dims": [
                {
                    "dim": entry.dim,
                    "tier": network.tiers[entry.dim].value,
                    "link": float(entry.link),
                    "switch": float(entry.switch),
                    "nic": float(entry.nic),
                    "total": float(entry.total),
                }
                for entry in entries
            ],
            "total": float(sum(entry.total for entry in entries)),
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    total = 0.0
    for entry in entries:
        tier = network.tiers[entry.dim].value
        print(
            f"dim {entry.dim} ({tier:>8}): link ${entry.link:,.0f}  "
            f"switch ${entry.switch:,.0f}  NIC ${entry.nic:,.0f}  "
            f"= ${entry.total:,.0f}"
        )
        total += entry.total
    print(f"total network cost: ${total:,.0f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perfbench import (
        AnalyzeBenchConfig,
        BenchConfig,
        StrategyBenchConfig,
        SweepBenchConfig,
        format_analyze_report,
        format_report,
        format_strategy_report,
        format_sweep_report,
        quick_analyze_config,
        quick_config,
        quick_strategy_config,
        quick_sweep_config,
        run_analyze_benchmark,
        run_benchmarks,
        run_strategy_benchmark,
        run_sweep_benchmark,
        write_artifact,
    )
    from repro.perfbench.harness import BenchEquivalenceError

    if args.strategy:
        if args.quick:
            config = quick_strategy_config()
        else:
            defaults = StrategyBenchConfig()
            config = StrategyBenchConfig(
                workload=(
                    args.workload[0] if args.workload else defaults.workload
                ),
                topology=(
                    args.topology if args.topology != "4D-4K"
                    else defaults.topology
                ),
                budgets_gbps=tuple(args.bw) or defaults.budgets_gbps,
                repeats=args.repeats,
            )
        output = args.output or "BENCH_strategy.json"
        try:
            artifact = run_strategy_benchmark(config)
        except BenchEquivalenceError as exc:
            # Warm results that drift from the cold path are the one
            # failure CI must catch; no artifact is written because the
            # timings cannot be trusted.
            print(f"error: {exc}", file=sys.stderr)
            return 3
        print(format_strategy_report(artifact))
        write_artifact(output, artifact)
        print(f"wrote {output}")
        reduction = artifact["breakdown"]["start_reduction"]
        if args.min_reuse > 0 and reduction < args.min_reuse:
            print(
                f"error: warm-start reuse cut only {reduction:.1%} of the "
                f"cold baseline's solver starts, below the "
                f"{args.min_reuse:.1%} floor",
                file=sys.stderr,
            )
            return 3
        return 0

    if args.analyze:
        if args.quick:
            config = quick_analyze_config()
        else:
            defaults = AnalyzeBenchConfig()
            config = AnalyzeBenchConfig(
                workload=(
                    args.workload[0] if args.workload else defaults.workload
                ),
                topology=args.topology,
                budget_gbps=args.total_bw,
                probes=args.probes,
            )
        artifact = run_analyze_benchmark(config)
        output = args.output or "BENCH_analyze.json"
        print(format_analyze_report(artifact))
        write_artifact(output, artifact)
        print(f"wrote {output}")
        if args.max_p95_ms > 0 and artifact["cached_p95_ms"] > args.max_p95_ms:
            print(
                f"error: cached-probe p95 {artifact['cached_p95_ms']:.3f} ms "
                f"exceeds the {args.max_p95_ms:g} ms floor",
                file=sys.stderr,
            )
            return 3
        return 0

    if args.sweep:
        if args.quick:
            config = quick_sweep_config()
        else:
            defaults = SweepBenchConfig()
            config = SweepBenchConfig(
                workloads=tuple(args.workload) or defaults.workloads,
                topology=args.topology,
                budgets_gbps=tuple(args.bw) or defaults.budgets_gbps,
                repeats=args.repeats,
            )
        output = args.output or "BENCH_sweep.json"
        try:
            artifact = run_sweep_benchmark(config)
        except BenchEquivalenceError as exc:
            # Warm results that drift from the cold path are the one
            # failure CI must catch; no artifact is written because the
            # timings cannot be trusted.
            print(f"error: {exc}", file=sys.stderr)
            return 3
        print(format_sweep_report(artifact))
        write_artifact(output, artifact)
        print(f"wrote {output}")
        if args.min_speedup > 0 and artifact["speedup"] < args.min_speedup:
            print(
                f"error: sweep speedup {artifact['speedup']:.2f}x below "
                f"the {args.min_speedup:g}x floor",
                file=sys.stderr,
            )
            return 3
        return 0

    if args.quick:
        config = quick_config()
    else:
        config = BenchConfig(
            workloads=tuple(args.workload) or ("GPT-3",),
            topology=args.topology,
            total_bw_gbps=args.total_bw,
            repeats=args.repeats,
        )
    output = args.output or "BENCH_solver.json"
    try:
        artifact = run_benchmarks(config)
    except BenchEquivalenceError as exc:
        # Equivalence drift is the one failure CI must catch; no artifact
        # is written because the numbers cannot be trusted.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(format_report(artifact))
    write_artifact(output, artifact)
    print(f"wrote {output}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Summarize a Chrome trace file: per-name count / total / mean / max."""
    try:
        with open(args.file, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read trace file: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"trace file is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ReproError(
            f"{args.file!r} is not a Chrome trace (no traceEvents key)"
        )
    totals: dict[str, dict] = {}
    for event in payload["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        entry = totals.setdefault(str(event.get("name", "?")), {
            "count": 0, "total_ms": 0.0, "max_ms": 0.0, "cpu_ms": 0.0,
        })
        duration_ms = float(event.get("dur", 0.0)) / 1e3
        entry["count"] += 1
        entry["total_ms"] += duration_ms
        entry["max_ms"] = max(entry["max_ms"], duration_ms)
        entry["cpu_ms"] += float(event.get("args", {}).get("cpu_s", 0.0)) * 1e3
    if args.as_json:
        for entry in totals.values():
            for key in ("total_ms", "max_ms", "cpu_ms"):
                entry[key] = round(entry[key], 6)
        print(json.dumps(dict(sorted(totals.items())), indent=1, sort_keys=True))
        return 0
    if not totals:
        print("no spans")
        return 0
    print(
        f"{'span':<16} {'count':>6}  {'total (ms)':>11}  {'mean (ms)':>10}  "
        f"{'max (ms)':>10}  {'cpu (ms)':>10}"
    )
    for name, entry in sorted(
        totals.items(), key=lambda item: -item[1]["total_ms"]
    ):
        mean_ms = entry["total_ms"] / entry["count"]
        print(
            f"{name:<16} {entry['count']:>6}  {entry['total_ms']:>11.3f}  "
            f"{mean_ms:>10.3f}  {entry['max_ms']:>10.3f}  "
            f"{entry['cpu_ms']:>10.3f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs import setup_logging
    from repro.serve import FleetCoordinator, JobManager, JobStore, create_server

    level = args.log_level or ("debug" if args.verbose else None)
    setup_logging(level=level, json_format=args.log_json)
    if args.fleet and not args.state_dir:
        print("repro serve: --fleet requires --state-dir", file=sys.stderr)
        return 2
    store = JobStore(args.state_dir) if args.state_dir else None
    fleet = (
        FleetCoordinator(
            store,
            lease_ttl_s=args.lease_ttl,
            poll_interval_s=args.fleet_poll,
        )
        if args.fleet else None
    )
    manager = JobManager(
        workers=args.workers, max_jobs=args.max_jobs, store=store,
        fleet=fleet,
    )
    server = create_server(
        manager, host=args.host, port=args.port, verbose=args.verbose,
        cache_root=args.cache_root,
    )
    host, port = server.server_address[:2]
    durability = (
        f"; durable state in {args.state_dir}"
        + (
            f" ({manager.recovered_jobs} jobs recovered)"
            if manager.recovered_jobs else ""
        )
        if store is not None else ""
    )
    fleet_note = (
        f"; fleet member {fleet.owner_id} (lease ttl {args.lease_ttl:g}s)"
        if fleet is not None else ""
    )
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(schema v4; {args.workers} job workers{durability}{fleet_note}; "
        f"Ctrl-C to stop)"
    )

    def _drain(signum, frame):
        # Graceful drain: stop claiming new work right away, then stop
        # the accept loop. shutdown() must run off the main thread —
        # the main thread is inside serve_forever() and shutdown()
        # blocks until that loop exits.
        if fleet is not None:
            fleet.drain()
        threading.Thread(
            target=server.shutdown, name="repro-drain", daemon=True
        ).start()

    previous_sigterm = signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
        print("\ndraining…" if fleet is not None else "\nshutting down…")
    except KeyboardInterrupt:
        print("\nshutting down…")
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        server.shutdown()
        server.server_close()
        # With a durable store, leave queued work on disk for the next
        # boot instead of cancelling it: restart is resume, not reset.
        # In fleet mode this releases still-queued leases to the peers.
        manager.shutdown(cancel_pending=store is None)
    return 0


def _submit_request(args: argparse.Namespace):
    """Build the request a submit invocation describes (optimize or batch)."""
    from repro.api.requests import BatchRequest
    from repro.explore import load_sweep_spec

    if args.spec:
        if args.scenario or args.topology or args.workload or args.workload_file:
            raise ReproError(
                "--spec submits a batch job; drop the scenario/target flags"
            )
        if args.total_bw is not None or args.cap or args.scheme is not None:
            # Never silently drop a constraint the user typed: the spec
            # file owns the budget/scheme axes and per-cell caps.
            raise ReproError(
                "--spec submits a batch job; --total-bw/--cap/--scheme "
                "belong in the spec file's axes, not on the command line"
            )
        return BatchRequest(
            spec=load_sweep_spec(args.spec),
            workers=args.batch_workers,
            cache_dir=args.cache_dir,
        )
    if args.cache_dir or args.batch_workers != 1:
        # Symmetric with the --spec conflicts above: batch-only flags on a
        # single optimize must fail loudly, not silently do nothing.
        raise ReproError(
            "--cache-dir/--batch-workers apply to batch jobs; add --spec"
        )
    scenario = _optimize_scenario(args)
    return OptimizeRequest(
        scenario=scenario, scheme=_SCHEMES[args.scheme or "perf"]
    )


def _print_event(event, file=None) -> None:
    data = json.dumps(event.data, sort_keys=True)
    print(f"[{event.seq:>3}] {event.kind:<6} {data}", file=file or sys.stderr)


def _print_batch_response(response, as_json: bool) -> int:
    if as_json:
        print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
        return 0
    sweep = response.sweep
    for result in sweep.results:
        point = result.point
        status = (
            f"ERROR: {result.error}" if not result.ok
            else f"{result.step_time_ms:.3f} ms, ${result.network_cost:,.0f}"
        )
        print(f"{point.label():<55} {status}")
    diagnostics = response.diagnostics or {}
    print(
        f"cells: {len(sweep.results)}, cache hits: {sweep.cache_hits}, "
        f"solver calls: {sweep.solver_calls}, "
        f"warm hit rate: {diagnostics.get('warm_hit_rate', 0.0):.1%}, "
        f"errors: {sweep.num_errors}"
    )
    return 2 if sweep.results and sweep.num_errors == len(sweep.results) else 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.requests import BatchResponse

    request = _submit_request(args)

    if args.url:
        from repro.serve.client import ServeClient

        client = ServeClient(args.url)
        info = client.submit(request)
        print(f"job {info.id}: {info.state.value}", file=sys.stderr)
        if args.no_wait:
            print(json.dumps(info.to_dict(), indent=1, sort_keys=True))
            return 0
        if args.events and not info.done:
            client.follow_to_completion(info.id, on_event=_print_event)
            response = client.result(info.id)
        else:
            # No event display wanted: poll, and decode the envelope the
            # final poll already downloaded — no second result fetch, no
            # streaming (and discarding) a huge per-cell event log.
            response = client.wait(info.id).response()
    else:
        if args.no_wait:
            # Returning without waiting only means something when the job
            # outlives this process; an in-process queue cannot offer that.
            raise ReproError(
                "--no-wait requires --url: an in-process job queue dies "
                "when the CLI exits"
            )
        from repro.serve import JobManager

        with JobManager(workers=1) as manager:
            handle = manager.submit(request)
            print(f"job {handle.id}: queued (in-process)", file=sys.stderr)
            if args.events:
                for event in handle.stream():
                    _print_event(event)
            response = handle.result()

    if isinstance(response, BatchResponse):
        return _print_batch_response(response, args.as_json)
    return _print_optimize_response(response, args.as_json)


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(args.url)
    if args.cancel:
        info = client.cancel(args.cancel)
        print(f"job {info.id}: {info.state.value}")
        return 0
    if args.events:
        def show(event) -> None:
            if args.as_json:
                print(json.dumps(event.to_dict(), sort_keys=True))
            else:
                _print_event(event, file=sys.stdout)

        if args.follow:
            # Stall-tolerant: a quiet long solve must not abort the watch.
            client.follow_to_completion(args.events, on_event=show)
        else:
            for event in client.events(args.events):
                show(event)
        return 0
    if args.job:
        info = client.job(args.job)
        print(json.dumps(info.to_dict(), indent=1, sort_keys=True))
        return 0
    listing = client.jobs()
    if args.as_json:
        print(json.dumps(
            [info.to_dict()["job"] for info in listing],
            indent=1, sort_keys=True,
        ))
        return 0
    if not listing:
        print("no jobs")
        return 0
    print(f"{'id':<24} {'kind':<9} {'state':<10} {'events':>6}  error")
    for info in listing:
        print(
            f"{info.id:<24} {info.kind:<9} {info.state.value:<10} "
            f"{info.num_events:>6}  {info.error}"
        )
    return 0


_COMMANDS = {
    "topologies": _cmd_topologies,
    "workloads": _cmd_workloads,
    "optimize": _cmd_optimize,
    "analyze": _cmd_analyze,
    "costrategy": _cmd_costrategy,
    "scenario": _cmd_scenario,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "simulate": _cmd_simulate,
    "cost": _cmd_cost,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "obs": _cmd_obs,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — the Unix convention is to
        # exit quietly (and avoid the interpreter's own flush complaining).
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pipeline-parallel training-time estimation (Sec. IV-C extension).

The paper notes that pipeline parallelism's point-to-point transfers "could
still be captured in terms of network BW (e.g. m/B_i)" — this module builds
that out into a usable estimator. The model is a GPipe-style synchronous
pipeline:

* the layer stack is divided evenly (in order) into ``pp`` stages;
* a training step streams ``M`` microbatches through the pipeline, so the
  per-stage work is paid ``(M + pp − 1)`` times while a non-pipelined stage
  would pay it ``M`` times — the classic bubble factor ``(M + pp − 1) / M``;
* each stage boundary moves the activation block forward and its gradient
  backward, once per microbatch, as point-to-point transfers through the
  dimensions the boundary physically crosses
  (:meth:`~repro.workloads.parallelism.GroupMapping.boundary_spans`);
* within a stage, TP and ZeRO-2 DP communication behave exactly as in the
  paper's two-degree model (DP gradient sync is paid once per step and is
  not multiplied by the bubble factor).

Everything composes into the same symbolic expression the optimizer
consumes, so fabric bandwidth can be co-optimized with HP-(tp, pp, dp)
strategies — the natural extension of the paper's Fig. 21 study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.traffic import traffic_coefficients
from repro.collectives.types import CollectiveOp, CollectiveType
from repro.topology.network import MultiDimNetwork
from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.estimator import layer_components, resolve_comm
from repro.training.expr import CommTerm, Const, Expr, MaxExpr, Sum, simplify
from repro.training.loops import NoOverlapLoop, TrainingLoop
from repro.utils.errors import ConfigurationError
from repro.workloads.parallelism import GroupMapping, map_parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class PipelineSchedule:
    """Static description of one pipelined training step.

    Attributes:
        num_stages: Pipeline depth ``pp``.
        num_microbatches: Microbatches ``M`` streamed per step.
        layers_per_stage: Layer count of each stage (even split).
    """

    num_stages: int
    num_microbatches: int
    layers_per_stage: int

    @property
    def bubble_factor(self) -> float:
        """GPipe occupancy penalty: ``(M + pp − 1) / M``."""
        return (self.num_microbatches + self.num_stages - 1) / self.num_microbatches


def stage_boundaries(workload: Workload) -> int:
    """Number of stage boundaries: ``pp − 1``."""
    return workload.parallelism.pp - 1


def _boundary_ops(
    workload: Workload,
    mapping: GroupMapping,
    activation_bytes: float,
) -> list[CollectiveOp]:
    """One forward P2P op per stage boundary (backward mirrors it)."""
    ops = []
    for boundary in range(workload.parallelism.pp - 1):
        spans = mapping.boundary_spans(boundary)
        ops.append(
            CollectiveOp(
                CollectiveType.POINT_TO_POINT,
                activation_bytes,
                spans,
                label=f"{workload.name}/pp-boundary{boundary}",
            )
        )
    return ops


def infer_activation_bytes(workload: Workload) -> float:
    """Activation block size crossing stage boundaries.

    Uses the workload's TP communication payload when present (Megatron's
    activation All-Reduce moves exactly the boundary-crossing block); falls
    back to the mean DP payload for TP-free workloads.
    """
    for layer in workload.layers:
        for comm in layer.fwd_comms + layer.tp_comms:
            if comm.size_bytes > 0:
                return comm.size_bytes
    sizes = [
        comm.size_bytes
        for layer in workload.layers
        for comm in layer.dp_comms
        if comm.size_bytes > 0
    ]
    if not sizes:
        raise ConfigurationError(
            f"cannot infer an activation size for {workload.name!r}; "
            "the workload has no communication at all"
        )
    return sum(sizes) / len(sizes)


def pipeline_time_expression(
    workload: Workload,
    network: MultiDimNetwork,
    num_microbatches: int,
    compute_model: ComputeModel | None = None,
    loop: TrainingLoop | None = None,
    activation_bytes: float | None = None,
) -> Expr:
    """Step time of a pipeline-parallel workload as a function of bandwidth.

    Args:
        workload: Workload whose parallelism has ``pp > 1``. Layers are
            assigned to stages evenly, in order.
        network: Target network.
        num_microbatches: ``M`` microbatches streamed per step.
        compute_model: Defaults to the paper's A100 model.
        loop: Intra-stage training loop (Fig. 5); defaults to no-overlap.
        activation_bytes: Boundary payload; inferred from the workload's TP
            activity when omitted.

    Returns:
        A simplified symbolic expression:
        ``bubble · Σ_stage-layers (layer time) + bubble · M-weighted P2P +
        Σ DP sync`` — DP gradient synchronization is per-step, the rest is
        per-microbatch with pipeline occupancy applied.
    """
    parallelism = workload.parallelism
    if parallelism.pp < 2:
        raise ConfigurationError(
            f"{workload.name} has pp={parallelism.pp}; use "
            "training_time_expression for non-pipelined workloads"
        )
    if num_microbatches < 1:
        raise ConfigurationError(
            f"num_microbatches must be >= 1, got {num_microbatches}"
        )
    if workload.num_layers % parallelism.pp != 0:
        raise ConfigurationError(
            f"{workload.num_layers} layers do not divide into "
            f"{parallelism.pp} equal pipeline stages"
        )

    compute = compute_model or a100_compute_model()
    loop = loop or NoOverlapLoop()
    mapping = map_parallelism(network, parallelism)
    schedule = PipelineSchedule(
        num_stages=parallelism.pp,
        num_microbatches=num_microbatches,
        layers_per_stage=workload.num_layers // parallelism.pp,
    )

    # Per-microbatch stage work: the critical path is the (identical-stage)
    # pipeline's per-stage time; with heterogeneous layers we take the most
    # expensive stage to stay a valid makespan bound.
    stage_exprs: list[Expr] = []
    for stage in range(schedule.num_stages):
        start = stage * schedule.layers_per_stage
        members = workload.layers[start:start + schedule.layers_per_stage]
        per_layer = [
            loop.layer_time(_stage_layer_components(layer, mapping, compute))
            for layer in members
        ]
        stage_exprs.append(simplify(Sum(tuple(per_layer))))

    # All stages run concurrently; the slowest defines the pipeline beat.
    # For the common homogeneous case every stage expression is identical
    # and simplify() collapses the bookkeeping.
    stage_beat = simplify(MaxExpr(tuple(stage_exprs)))

    # Boundary transfers: activation forward + gradient backward per
    # microbatch. The per-microbatch critical path pays the *slowest*
    # boundary (transfers of different boundaries pipeline with compute);
    # we charge the worst boundary twice (fwd + bwd), a makespan bound.
    payload = activation_bytes or infer_activation_bytes(workload)
    boundary_terms: list[Expr] = []
    for op in _boundary_ops(workload, mapping, payload):
        coefficients = traffic_coefficients(op)
        if coefficients:
            boundary_terms.append(CommTerm(coefficients, label=op.label))
    if boundary_terms:
        worst_boundary = simplify(MaxExpr(tuple(boundary_terms)))
        per_microbatch = Sum((stage_beat, worst_boundary, worst_boundary))
    else:
        per_microbatch = stage_beat

    # DP gradient synchronization happens once per step, after the flush.
    dp_terms: list[Expr] = []
    for layer in workload.layers:
        for comm in layer.dp_comms:
            op = resolve_comm(comm, mapping, f"{workload.name}/{layer.name}/dp")
            coefficients = traffic_coefficients(op)
            if coefficients:
                dp_terms.append(CommTerm(coefficients, label=op.label))
    dp_expr: Expr = simplify(Sum(tuple(dp_terms))) if dp_terms else Const(0.0)

    total_microbatch_work = Sum(
        (per_microbatch,),
        (schedule.bubble_factor * schedule.num_microbatches,),
    )
    return simplify(Sum((total_microbatch_work, dp_expr)))


def _stage_layer_components(layer, mapping, compute):
    """Layer components without DP communication (charged per step, later)."""
    components = layer_components(layer, mapping, compute)
    return type(components)(
        fwd_compute=components.fwd_compute,
        fwd_comm=components.fwd_comm,
        tp_compute=components.tp_compute,
        tp_comm=components.tp_comm,
        dp_compute=components.dp_compute,
        dp_comm=Const(0.0),
    )


def estimate_pipeline_step_time(
    workload: Workload,
    network: MultiDimNetwork,
    bandwidths,
    num_microbatches: int,
    compute_model: ComputeModel | None = None,
    loop: TrainingLoop | None = None,
) -> float:
    """Numeric pipeline step time at a concrete bandwidth vector."""
    expression = pipeline_time_expression(
        workload, network, num_microbatches, compute_model, loop
    )
    return expression.evaluate(bandwidths)

"""Training-time modeling: compute model, training loops, and estimation.

Public surface:

* :class:`ComputeModel` / :func:`a100_compute_model` — NPU compute rate
  (Sec. V-B's 234 TFLOPS A100).
* :class:`NoOverlapLoop` / :class:`TPDPOverlapLoop` / :func:`get_loop` —
  Fig. 5's training loops.
* :func:`training_time_expression` — the symbolic end-to-end time in the
  bandwidth vector (what LIBRA optimizes).
* :func:`estimate_step_time` / :func:`compute_only_time` — numeric helpers.
* :func:`resolve_workload_comms` — per-step collective inventory for the
  simulator.
"""

from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.estimator import (
    ResolvedComm,
    compute_only_time,
    estimate_step_time,
    layer_components,
    resolve_comm,
    resolve_workload_comms,
    training_time_expression,
)
from repro.training.pipeline import (
    PipelineSchedule,
    estimate_pipeline_step_time,
    infer_activation_bytes,
    pipeline_time_expression,
)
from repro.training.loops import (
    LayerComponents,
    NoOverlapLoop,
    TPDPOverlapLoop,
    TrainingLoop,
    get_loop,
)

__all__ = [
    "ComputeModel",
    "a100_compute_model",
    "ResolvedComm",
    "compute_only_time",
    "estimate_step_time",
    "layer_components",
    "resolve_comm",
    "resolve_workload_comms",
    "training_time_expression",
    "PipelineSchedule",
    "estimate_pipeline_step_time",
    "infer_activation_bytes",
    "pipeline_time_expression",
    "LayerComponents",
    "NoOverlapLoop",
    "TPDPOverlapLoop",
    "TrainingLoop",
    "get_loop",
]

"""Symbolic training-time expressions in the bandwidth vector.

LIBRA's key modeling move (Sec. IV-C) is capturing end-to-end training time
as a *function of the per-dimension bandwidths* ``B``. This module is that
function's representation: a small expression tree with four node kinds —

* :class:`Const` — bandwidth-independent time (compute),
* :class:`CommTerm` — one collective: ``max_j coeff_j / B[dim_j]``,
* :class:`Sum` — sequential composition (optionally weighted children),
* :class:`MaxExpr` — overlap composition (Fig. 5(c)'s
  ``max(TP_Comm, DP_Comp + DP_Comm)``).

The tree supports direct numeric evaluation (for sweeps and baselines) and
structural compilation into the epigraph form the solver optimizes: every
``max`` becomes an auxiliary variable with one inequality per operand. That
reformulation is what makes ``PerfOptBW`` a convex program.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError


class Expr(abc.ABC):
    """A non-negative time expression over the bandwidth vector."""

    @abc.abstractmethod
    def evaluate(self, bandwidths: Sequence[float]) -> float:
        """Numeric value at the given per-dimension bandwidths (bytes/s)."""

    @abc.abstractmethod
    def max_dim(self) -> int:
        """Largest dimension index referenced (-1 when bandwidth-free)."""


@dataclass(frozen=True)
class Const(Expr):
    """A bandwidth-independent time contribution (compute, fixed latency)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"Const must be >= 0, got {self.value}")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return self.value

    def max_dim(self) -> int:
        return -1


@dataclass(frozen=True)
class CommTerm(Expr):
    """One collective's time: ``max_j coeff_j / B[dim_j]``.

    Attributes:
        coefficients: ``(dim, traffic_bytes)`` pairs, ascending by dim; the
            output of :func:`repro.collectives.traffic.traffic_coefficients`.
        label: Tag for reports. Excluded from equality/hashing so that
            structurally identical terms from different layers deduplicate
            under :func:`simplify`.
    """

    coefficients: tuple[tuple[int, float], ...]
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        dims = [dim for dim, _ in self.coefficients]
        if dims != sorted(dims) or len(set(dims)) != len(dims):
            raise ConfigurationError(f"coefficients must have unique ascending dims: {dims}")
        for dim, coeff in self.coefficients:
            if dim < 0 or coeff < 0:
                raise ConfigurationError(f"bad coefficient ({dim}, {coeff})")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        worst = 0.0
        for dim, coeff in self.coefficients:
            if dim >= len(bandwidths):
                raise ConfigurationError(
                    f"CommTerm references dim {dim} but got {len(bandwidths)} bandwidths"
                )
            worst = max(worst, coeff / bandwidths[dim])
        return worst

    def max_dim(self) -> int:
        return max((dim for dim, _ in self.coefficients), default=-1)


@dataclass(frozen=True)
class Sum(Expr):
    """Weighted sum of child expressions (sequential composition)."""

    children: tuple[Expr, ...]
    weights: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        weights = self.weights or tuple(1.0 for _ in self.children)
        if len(weights) != len(self.children):
            raise ConfigurationError(
                f"{len(self.weights)} weights for {len(self.children)} children"
            )
        if any(weight < 0 for weight in weights):
            raise ConfigurationError(f"weights must be >= 0, got {weights}")
        object.__setattr__(self, "weights", weights)

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return sum(
            weight * child.evaluate(bandwidths)
            for weight, child in zip(self.weights, self.children)
        )

    def max_dim(self) -> int:
        return max((child.max_dim() for child in self.children), default=-1)


@dataclass(frozen=True)
class MaxExpr(Expr):
    """Maximum of child expressions (overlap composition)."""

    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ConfigurationError("MaxExpr needs at least one child")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return max(child.evaluate(bandwidths) for child in self.children)

    def max_dim(self) -> int:
        return max(child.max_dim() for child in self.children)


def simplify(expr: Expr) -> Expr:
    """Flatten nested sums, merge constants, and deduplicate repeat terms.

    Identical subtrees under a :class:`Sum` are merged by summing their
    weights (every node is a frozen, hashable dataclass, so structural
    equality is exact). This matters enormously for real workloads: a
    96-layer transformer whose layers are identical collapses from hundreds
    of comm terms to a handful, which is what keeps the solver's compiled
    program — and hence optimization time — small.
    """
    if isinstance(expr, Sum):
        merged: dict[Expr, float] = {}
        const_total = 0.0

        def accumulate(child: Expr, weight: float) -> None:
            nonlocal const_total
            if weight == 0:
                return
            if isinstance(child, Const):
                const_total += weight * child.value
            elif isinstance(child, Sum):
                for inner_weight, inner_child in zip(child.weights, child.children):
                    accumulate(inner_child, weight * inner_weight)
            else:
                merged[child] = merged.get(child, 0.0) + weight

        for weight, child in zip(expr.weights, expr.children):
            accumulate(simplify(child), weight)

        flat_children = list(merged)
        flat_weights = [merged[child] for child in flat_children]
        if const_total > 0 or not flat_children:
            flat_children.append(Const(const_total))
            flat_weights.append(1.0)
        if len(flat_children) == 1 and flat_weights[0] == 1.0:
            return flat_children[0]
        return Sum(tuple(flat_children), tuple(flat_weights))
    if isinstance(expr, MaxExpr):
        children = tuple(dict.fromkeys(simplify(child) for child in expr.children))
        if len(children) == 1:
            return children[0]
        return MaxExpr(children)
    if isinstance(expr, CommTerm) and not expr.coefficients:
        return Const(0.0)
    return expr


def count_nodes(expr: Expr) -> int:
    """Total node count of the tree (diagnostics and tests)."""
    if isinstance(expr, (Const, CommTerm)):
        return 1
    if isinstance(expr, Sum):
        return 1 + sum(count_nodes(child) for child in expr.children)
    if isinstance(expr, MaxExpr):
        return 1 + sum(count_nodes(child) for child in expr.children)
    raise ConfigurationError(f"unknown expression node {type(expr).__name__}")

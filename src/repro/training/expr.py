"""Symbolic training-time expressions in the bandwidth vector.

LIBRA's key modeling move (Sec. IV-C) is capturing end-to-end training time
as a *function of the per-dimension bandwidths* ``B``. This module is that
function's representation: a small expression tree with four node kinds —

* :class:`Const` — bandwidth-independent time (compute),
* :class:`CommTerm` — one collective: ``max_j coeff_j / B[dim_j]``,
* :class:`Sum` — sequential composition (optionally weighted children),
* :class:`MaxExpr` — overlap composition (Fig. 5(c)'s
  ``max(TP_Comm, DP_Comp + DP_Comm)``).

The tree supports direct numeric evaluation (for sweeps and baselines) and
structural compilation into the epigraph form the solver optimizes: every
``max`` becomes an auxiliary variable with one inequality per operand. That
reformulation is what makes ``PerfOptBW`` a convex program.

Every node is a frozen, hashable dataclass, which buys two things: exact
structural deduplication in :func:`simplify`, and cheap memoization —
:func:`simplify` and :func:`vector_evaluator` are LRU-cached on the
expression itself, so repeat solves over the same workload never redo the
tree work. For hot numeric paths, :class:`VectorEvaluator` flattens a tree
once into coefficient arrays evaluated with a segment-max, replacing the
per-node Python recursion of :meth:`Expr.evaluate`.
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.utils.errors import ConfigurationError


class Expr(abc.ABC):
    """A non-negative time expression over the bandwidth vector."""

    @abc.abstractmethod
    def evaluate(self, bandwidths: Sequence[float]) -> float:
        """Numeric value at the given per-dimension bandwidths (bytes/s)."""

    @abc.abstractmethod
    def max_dim(self) -> int:
        """Largest dimension index referenced (-1 when bandwidth-free)."""


@dataclass(frozen=True)
class Const(Expr):
    """A bandwidth-independent time contribution (compute, fixed latency)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"Const must be >= 0, got {self.value}")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return self.value

    def max_dim(self) -> int:
        return -1


@dataclass(frozen=True)
class CommTerm(Expr):
    """One collective's time: ``max_j coeff_j / B[dim_j]``.

    Attributes:
        coefficients: ``(dim, traffic_bytes)`` pairs, ascending by dim; the
            output of :func:`repro.collectives.traffic.traffic_coefficients`.
        label: Tag for reports. Excluded from equality/hashing so that
            structurally identical terms from different layers deduplicate
            under :func:`simplify`.
    """

    coefficients: tuple[tuple[int, float], ...]
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        dims = [dim for dim, _ in self.coefficients]
        if dims != sorted(dims) or len(set(dims)) != len(dims):
            raise ConfigurationError(f"coefficients must have unique ascending dims: {dims}")
        for dim, coeff in self.coefficients:
            if dim < 0 or coeff < 0:
                raise ConfigurationError(f"bad coefficient ({dim}, {coeff})")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        worst = 0.0
        for dim, coeff in self.coefficients:
            if dim >= len(bandwidths):
                raise ConfigurationError(
                    f"CommTerm references dim {dim} but got {len(bandwidths)} bandwidths"
                )
            worst = max(worst, coeff / bandwidths[dim])
        return worst

    def max_dim(self) -> int:
        return max((dim for dim, _ in self.coefficients), default=-1)


@dataclass(frozen=True)
class Sum(Expr):
    """Weighted sum of child expressions (sequential composition)."""

    children: tuple[Expr, ...]
    weights: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        weights = self.weights or tuple(1.0 for _ in self.children)
        if len(weights) != len(self.children):
            raise ConfigurationError(
                f"{len(self.weights)} weights for {len(self.children)} children"
            )
        if any(weight < 0 for weight in weights):
            raise ConfigurationError(f"weights must be >= 0, got {weights}")
        object.__setattr__(self, "weights", weights)

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return sum(
            weight * child.evaluate(bandwidths)
            for weight, child in zip(self.weights, self.children)
        )

    def max_dim(self) -> int:
        return max((child.max_dim() for child in self.children), default=-1)


@dataclass(frozen=True)
class MaxExpr(Expr):
    """Maximum of child expressions (overlap composition)."""

    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ConfigurationError("MaxExpr needs at least one child")

    def evaluate(self, bandwidths: Sequence[float]) -> float:
        return max(child.evaluate(bandwidths) for child in self.children)

    def max_dim(self) -> int:
        return max(child.max_dim() for child in self.children)


@lru_cache(maxsize=1024)
def simplify(expr: Expr) -> Expr:
    """Flatten nested sums, merge constants, and deduplicate repeat terms.

    Identical subtrees under a :class:`Sum` are merged by summing their
    weights (every node is a frozen, hashable dataclass, so structural
    equality is exact). This matters enormously for real workloads: a
    96-layer transformer whose layers are identical collapses from hundreds
    of comm terms to a handful, which is what keeps the solver's compiled
    program — and hence optimization time — small.

    Memoized on the expression: the recursion flows through the cache, so
    shared subtrees simplify once and repeat solves of the same workload
    (e.g. ``PerfPerCostOptBW`` warm-starting through ``PerfOptBW``, or a
    budget sweep revisiting one expression) skip the tree walk entirely.
    """
    if isinstance(expr, Sum):
        merged: dict[Expr, float] = {}
        const_total = 0.0

        def accumulate(child: Expr, weight: float) -> None:
            nonlocal const_total
            if weight == 0:
                return
            if isinstance(child, Const):
                const_total += weight * child.value
            elif isinstance(child, Sum):
                for inner_weight, inner_child in zip(child.weights, child.children):
                    accumulate(inner_child, weight * inner_weight)
            else:
                merged[child] = merged.get(child, 0.0) + weight

        for weight, child in zip(expr.weights, expr.children):
            accumulate(simplify(child), weight)

        flat_children = list(merged)
        flat_weights = [merged[child] for child in flat_children]
        if const_total > 0 or not flat_children:
            flat_children.append(Const(const_total))
            flat_weights.append(1.0)
        if len(flat_children) == 1 and flat_weights[0] == 1.0:
            return flat_children[0]
        return Sum(tuple(flat_children), tuple(flat_weights))
    if isinstance(expr, MaxExpr):
        children = tuple(dict.fromkeys(simplify(child) for child in expr.children))
        if len(children) == 1:
            return children[0]
        return MaxExpr(children)
    if isinstance(expr, CommTerm) and not expr.coefficients:
        return Const(0.0)
    return expr


#: Op kinds of the flat evaluator's combine stage.
_OP_SUM = 0
_OP_MAX = 1


class VectorEvaluator:
    """Flat, vectorized evaluator for one expression tree.

    Compiles the tree once into coefficient arrays: every collective's
    ``coeff / B[dim]`` ratios are computed in one vectorized division and
    reduced per term with a segment-max (``np.maximum.reduceat``), so the
    Python-level work per evaluation is one pass over the handful of
    ``Sum``/``MaxExpr`` combine ops that survive :func:`simplify` — not one
    call per tree node. Numerically identical to :meth:`Expr.evaluate`.

    Instances are thread-safe: the slot buffer is kept per thread
    (seeded once from a constants template), so the memoized
    :func:`vector_evaluator` can be shared by concurrent solves — the
    `repro.serve` worker pool drives exactly that — while each thread
    still reuses its buffer across calls instead of allocating per
    evaluation.
    """

    __slots__ = (
        "_comm_coeffs",
        "_comm_dims",
        "_comm_slots",
        "_comm_starts",
        "_local",
        "_max_dim",
        "_ops",
        "_root",
        "_template",
    )

    def __init__(self, expr: Expr):
        comm_dims: list[int] = []
        comm_coeffs: list[float] = []
        comm_starts: list[int] = []
        comm_slots: list[int] = []
        const_slots: list[int] = []
        const_values: list[float] = []
        ops: list[tuple[int, int, np.ndarray, np.ndarray | None]] = []
        num_slots = 0

        def visit(node: Expr) -> int:
            nonlocal num_slots
            slot = num_slots
            num_slots += 1
            if isinstance(node, Const):
                const_slots.append(slot)
                const_values.append(node.value)
            elif isinstance(node, CommTerm):
                if node.coefficients:
                    comm_starts.append(len(comm_dims))
                    comm_slots.append(slot)
                    for dim, coeff in node.coefficients:
                        comm_dims.append(dim)
                        comm_coeffs.append(coeff)
                else:
                    const_slots.append(slot)
                    const_values.append(0.0)
            elif isinstance(node, Sum):
                children = np.array(
                    [visit(child) for child in node.children], dtype=np.intp
                )
                ops.append(
                    (_OP_SUM, slot, children, np.asarray(node.weights, dtype=float))
                )
            elif isinstance(node, MaxExpr):
                children = np.array(
                    [visit(child) for child in node.children], dtype=np.intp
                )
                ops.append((_OP_MAX, slot, children, None))
            else:
                raise ConfigurationError(
                    f"unknown expression node {type(node).__name__}"
                )
            return slot

        self._root = visit(expr)
        self._max_dim = expr.max_dim()
        self._template = np.zeros(num_slots)
        self._template[const_slots] = const_values
        self._local = threading.local()
        self._comm_dims = np.asarray(comm_dims, dtype=np.intp)
        self._comm_coeffs = np.asarray(comm_coeffs, dtype=float)
        self._comm_starts = np.asarray(comm_starts, dtype=np.intp)
        self._comm_slots = np.asarray(comm_slots, dtype=np.intp)
        self._ops = ops

    def __call__(self, bandwidths: Sequence[float]) -> float:
        """Numeric value at the given per-dimension bandwidths (bytes/s)."""
        values = np.asarray(bandwidths, dtype=float)
        if self._max_dim >= values.shape[0]:
            raise ConfigurationError(
                f"expression references dim {self._max_dim} "
                f"but got {values.shape[0]} bandwidths"
            )
        # Per-thread working buffer: const slots come pre-filled from the
        # template and are never overwritten, comm/op slots are rewritten
        # on every call — so one copy per thread is both safe and enough.
        buffer = getattr(self._local, "values", None)
        if buffer is None:
            buffer = self._template.copy()
            self._local.values = buffer
        if self._comm_dims.size:
            ratios = self._comm_coeffs / values[self._comm_dims]
            buffer[self._comm_slots] = np.maximum.reduceat(
                ratios, self._comm_starts
            )
        for kind, out, children, weights in self._ops:
            if kind == _OP_SUM:
                buffer[out] = weights @ buffer[children]
            else:
                buffer[out] = buffer[children].max()
        return float(buffer[self._root])


@lru_cache(maxsize=256)
def vector_evaluator(expr: Expr) -> VectorEvaluator:
    """A memoized :class:`VectorEvaluator` for ``expr``.

    Sweeps and the solver's candidate re-evaluation call this with the same
    expression over and over; the flattening cost is paid once per
    expression per process.
    """
    return VectorEvaluator(expr)


def count_nodes(expr: Expr) -> int:
    """Total node count of the tree (diagnostics and tests)."""
    if isinstance(expr, (Const, CommTerm)):
        return 1
    if isinstance(expr, Sum):
        return 1 + sum(count_nodes(child) for child in expr.children)
    if isinstance(expr, MaxExpr):
        return 1 + sum(count_nodes(child) for child in expr.children)
    raise ConfigurationError(f"unknown expression node {type(expr).__name__}")

"""NPU compute-time model (Sec. V-B).

The paper estimates compute times from the measured average efficacy of an
NVIDIA A100: 75% of the 312 TFLOPS FP16 peak, i.e. 234 TFLOPS effective.
Compute time is simply FLOPs divided by the effective rate — the modeling
section explicitly leaves memory-bandwidth and reduction-rate effects out of
scope, as communication dominates large-model training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ConfigurationError
from repro.utils.units import TFLOPS
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class ComputeModel:
    """An NPU's sustained compute capability.

    Attributes:
        peak_flops: Peak throughput in FLOP/s.
        efficiency: Sustained fraction of peak actually achieved (0–1].
        name: Label for reports.
    """

    peak_flops: float
    efficiency: float = 1.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigurationError(f"peak_flops must be positive, got {self.peak_flops}")
        check_probability(self.efficiency, "efficiency")
        if self.efficiency == 0:
            raise ConfigurationError("efficiency must be > 0")

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s: ``peak × efficiency``."""
        return self.peak_flops * self.efficiency

    def time_for(self, flops: float) -> float:
        """Seconds to execute ``flops`` on one NPU."""
        if flops < 0:
            raise ConfigurationError(f"flops must be >= 0, got {flops}")
        return flops / self.effective_flops

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "peak_flops": self.peak_flops,
            "efficiency": self.efficiency,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComputeModel":
        """Rebuild a compute model from :meth:`to_dict` output."""
        try:
            return cls(
                peak_flops=float(payload["peak_flops"]),
                efficiency=float(payload.get("efficiency", 1.0)),
                name=str(payload.get("name", "custom")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed compute-model payload: {exc}"
            ) from exc


def a100_compute_model() -> ComputeModel:
    """The paper's A100 model: 312 TFLOPS FP16 peak at 75% → 234 TFLOPS."""
    return ComputeModel(peak_flops=312 * TFLOPS, efficiency=0.75, name="A100-75pct")

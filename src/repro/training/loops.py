"""Training loops: how compute and communication compose (Fig. 5).

A training loop turns one layer's components — forward compute/comm, backward
TP compute/comm, backward DP compute/comm — into a time expression:

* :class:`NoOverlapLoop` (Fig. 5(b)): strictly sequential; the layer time is
  the plain sum of all six components.
* :class:`TPDPOverlapLoop` (Fig. 5(c)): TP compute is exposed, but TP
  communication overlaps with DP compute + DP communication:
  ``TP_Comp + max(TP_Comm, DP_Comp + DP_Comm)`` per layer (forward is still
  sequential).

Loops compose :mod:`repro.training.expr` nodes so the result stays symbolic in
the bandwidth vector; custom loops can be added by implementing
:class:`TrainingLoop`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.training.expr import Const, Expr, MaxExpr, Sum


@dataclass(frozen=True)
class LayerComponents:
    """One layer's time components, comm already symbolic in bandwidth.

    Attributes:
        fwd_compute: Forward compute seconds.
        fwd_comm: Forward communication expression.
        tp_compute: Backward input-gradient compute seconds.
        tp_comm: Backward TP communication expression.
        dp_compute: Backward weight-gradient compute seconds.
        dp_comm: DP gradient-synchronization expression.
    """

    fwd_compute: float
    fwd_comm: Expr
    tp_compute: float
    tp_comm: Expr
    dp_compute: float
    dp_comm: Expr


class TrainingLoop(abc.ABC):
    """Strategy object producing a layer's time expression."""

    name: str = "abstract"

    def layer_time(self, layer: LayerComponents) -> Expr:
        """Full layer time: forward part + backward part."""
        return Sum((self.forward_time(layer), self.backward_time(layer)))

    def forward_time(self, layer: LayerComponents) -> Expr:
        """Forward pass: compute then communication, sequential in all loops."""
        return Sum((Const(layer.fwd_compute), layer.fwd_comm))

    @abc.abstractmethod
    def backward_time(self, layer: LayerComponents) -> Expr:
        """Backward pass composition — where the loops differ."""


class NoOverlapLoop(TrainingLoop):
    """Fig. 5(b): every stage runs exclusively; times simply add."""

    name = "no-overlap"

    def backward_time(self, layer: LayerComponents) -> Expr:
        return Sum(
            (
                Const(layer.tp_compute),
                layer.tp_comm,
                Const(layer.dp_compute),
                layer.dp_comm,
            )
        )


class TPDPOverlapLoop(TrainingLoop):
    """Fig. 5(c): TP communication overlaps DP compute + DP communication."""

    name = "tp-dp-overlap"

    def backward_time(self, layer: LayerComponents) -> Expr:
        overlapped = MaxExpr(
            (
                layer.tp_comm,
                Sum((Const(layer.dp_compute), layer.dp_comm)),
            )
        )
        return Sum((Const(layer.tp_compute), overlapped))


_LOOPS = {
    NoOverlapLoop.name: NoOverlapLoop,
    TPDPOverlapLoop.name: TPDPOverlapLoop,
}


def get_loop(name: str) -> TrainingLoop:
    """Look up a loop by name (``"no-overlap"`` / ``"tp-dp-overlap"``)."""
    loop_class = _LOOPS.get(name)
    if loop_class is None:
        raise ValueError(f"unknown training loop {name!r}; known: {sorted(_LOOPS)}")
    return loop_class()

"""End-to-end training-time estimation (Sec. IV-C).

This module wires everything together on the analytical path:

1. place the workload's parallelization on the network
   (:func:`repro.workloads.parallelism.map_parallelism`);
2. resolve every scope-tagged communication requirement into a concrete
   :class:`~repro.collectives.types.CollectiveOp` over physical dimensions;
3. convert collectives into :class:`~repro.training.expr.CommTerm` nodes and
   compose them with compute constants through the training loop;
4. return one simplified expression — training time as a function of the
   bandwidth vector — ready for evaluation or optimization.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.collectives.traffic import traffic_coefficients
from repro.collectives.types import CollectiveOp
from repro.training.expr import CommTerm, Const, Expr, Sum, simplify
from repro.topology.network import MultiDimNetwork
from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.loops import LayerComponents, NoOverlapLoop, TrainingLoop
from repro.workloads.layers import CommRequirement, Layer
from repro.workloads.parallelism import GroupMapping, map_parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ResolvedComm:
    """A communication requirement bound to physical network dimensions."""

    layer_name: str
    phase: str  # "fwd" / "tp" / "dp"
    op: CollectiveOp


def resolve_comm(
    requirement: CommRequirement,
    mapping: GroupMapping,
    label: str = "",
) -> CollectiveOp:
    """Bind a scope-tagged requirement to the group's physical spans."""
    spans = mapping.spans_for(requirement.scope)
    return CollectiveOp(
        kind=requirement.kind,
        size_bytes=requirement.size_bytes,
        spans=spans,
        label=label or requirement.label,
    )


def resolve_workload_comms(
    workload: Workload,
    network: MultiDimNetwork,
) -> list[ResolvedComm]:
    """Every collective of one training step, bound to the network.

    The returned list is in execution order (per layer: forward, TP-backward,
    DP comms) and feeds both the analytical estimator and the simulator.
    """
    mapping = map_parallelism(network, workload.parallelism)
    resolved = []
    for layer in workload.layers:
        for phase, comms in (
            ("fwd", layer.fwd_comms),
            ("tp", layer.tp_comms),
            ("dp", layer.dp_comms),
        ):
            for comm in comms:
                label = f"{workload.name}/{layer.name}/{phase}"
                if comm.label:
                    label = f"{label}/{comm.label}"
                resolved.append(
                    ResolvedComm(layer.name, phase, resolve_comm(comm, mapping, label))
                )
    return resolved


def _comm_expr(
    comms: tuple[CommRequirement, ...],
    mapping: GroupMapping,
    in_network_dims: frozenset[int],
    label: str,
) -> Expr:
    """Expression for a layer phase's communications (sequential)."""
    terms: list[Expr] = []
    for comm in comms:
        op = resolve_comm(comm, mapping, label)
        coefficients = traffic_coefficients(op, in_network_dims)
        if coefficients:
            terms.append(CommTerm(coefficients, label=op.label))
    if not terms:
        return Const(0.0)
    if len(terms) == 1:
        return terms[0]
    return Sum(tuple(terms))


def layer_components(
    layer: Layer,
    mapping: GroupMapping,
    compute_model: ComputeModel,
    in_network_dims: frozenset[int] = frozenset(),
) -> LayerComponents:
    """One layer's time components under a network mapping."""
    return LayerComponents(
        fwd_compute=compute_model.time_for(layer.fwd_compute_flops),
        fwd_comm=_comm_expr(layer.fwd_comms, mapping, in_network_dims, f"{layer.name}/fwd"),
        tp_compute=compute_model.time_for(layer.tp_compute_flops),
        tp_comm=_comm_expr(layer.tp_comms, mapping, in_network_dims, f"{layer.name}/tp"),
        dp_compute=compute_model.time_for(layer.dp_compute_flops),
        dp_comm=_comm_expr(layer.dp_comms, mapping, in_network_dims, f"{layer.name}/dp"),
    )


def training_time_expression(
    workload: Workload,
    network: MultiDimNetwork,
    compute_model: ComputeModel | None = None,
    loop: TrainingLoop | None = None,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> Expr:
    """Training-step time of ``workload`` on ``network`` as a function of B.

    Args:
        workload: The (already parallelism-concrete) workload.
        network: Target multi-dimensional network.
        compute_model: NPU compute model; defaults to the paper's A100.
        loop: Training loop; defaults to :class:`NoOverlapLoop` (Fig. 5(b)).
        in_network_dims: Dimensions with in-network collective offload.

    Returns:
        A simplified :class:`~repro.training.expr.Expr`.
    """
    compute = compute_model or a100_compute_model()
    loop = loop or NoOverlapLoop()
    mapping = map_parallelism(network, workload.parallelism)
    frozen_dims = frozenset(in_network_dims)
    layer_exprs = tuple(
        loop.layer_time(layer_components(layer, mapping, compute, frozen_dims))
        for layer in workload.layers
    )
    return simplify(Sum(layer_exprs))


def estimate_step_time(
    workload: Workload,
    network: MultiDimNetwork,
    bandwidths: Sequence[float],
    compute_model: ComputeModel | None = None,
    loop: TrainingLoop | None = None,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> float:
    """Numeric training-step time at a concrete bandwidth vector (seconds)."""
    expression = training_time_expression(
        workload, network, compute_model, loop, in_network_dims
    )
    return expression.evaluate(bandwidths)


def compute_only_time(
    workload: Workload,
    compute_model: ComputeModel | None = None,
) -> float:
    """Pure compute time per step — Fig. 10's "no exposed communication" floor."""
    compute = compute_model or a100_compute_model()
    return compute.time_for(workload.total_compute_flops)

"""Nested spans with Chrome trace-event export.

A :class:`Tracer` collects :class:`Span` records — named, attributed
stretches of wall time with thread CPU time alongside — from any thread
of the process. Instrumented code opens spans through the module-level
accessor::

    from repro.obs import trace

    with trace.get_tracer().span("solve", attrs={"scheme": "perf"}) as sp:
        ...
        sp.set("starts", result.starts)

Nesting is implicit: spans opened while another span is active on the
same thread become its children (tracked per-thread, so concurrent
threads never interleave each other's stacks). The export is the Chrome
trace-event JSON format — ``"ph": "X"`` complete events with
microsecond ``ts``/``dur`` — loadable directly in ``chrome://tracing``
or Perfetto; viewers reconstruct the nesting from time containment per
``tid``, which the per-thread stacks guarantee.

**Off by default.** :func:`get_tracer` returns :data:`NULL_TRACER`
until a real tracer is installed (:func:`set_tracer`, or scoped with
:func:`use_tracer`). The null span is a shared singleton whose context
manager does nothing, so instrumented hot paths stay effectively free —
the invariant the BENCH_* CI floors pin down.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from pathlib import Path


class Span:
    """One named stretch of time, open until its ``with`` block exits."""

    __slots__ = (
        "name", "attrs", "tid", "depth",
        "_start_wall", "_start_perf", "_start_cpu",
        "wall_at", "duration_s", "cpu_s",
    )

    def __init__(self, name: str, attrs: dict | None, tid: int, depth: int):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.tid = tid
        self.depth = depth
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._start_cpu = time.thread_time()
        self.wall_at = self._start_wall
        self.duration_s = 0.0
        self.cpu_s = 0.0

    def set(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span (result stats etc.)."""
        self.attrs[key] = value

    def _close(self) -> None:
        self.duration_s = time.perf_counter() - self._start_perf
        self.cpu_s = time.thread_time() - self._start_cpu


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans from every thread of the process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._stacks = threading.local()

    @contextlib.contextmanager
    def span(self, name: str, attrs: dict | None = None):
        """Record one span; children opened inside nest under it."""
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        record = Span(
            name, attrs, tid=threading.get_ident(), depth=len(stack)
        )
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record._close()
            with self._lock:
                self._finished.append(record)

    def spans(self) -> list[Span]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def to_chrome(self) -> dict:
        """The collected spans as a Chrome trace-event JSON object."""
        pid = os.getpid()
        events = []
        for span in self.spans():
            args = {"cpu_s": round(span.cpu_s, 9)}
            args.update(span.attrs)
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "ts": round(span.wall_at * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": span.tid,
                "args": args,
            })
        # Stable viewer order: by start time, parents before children on ties.
        events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_chrome(), sort_keys=True), encoding="utf-8"
        )
        return target

    def summary(self) -> dict[str, dict]:
        """Per-span-name aggregates: count, total/max wall, total CPU."""
        totals: dict[str, dict] = {}
        for span in self.spans():
            entry = totals.setdefault(span.name, {
                "count": 0, "total_s": 0.0, "max_s": 0.0, "cpu_s": 0.0,
            })
            entry["count"] += 1
            entry["total_s"] += span.duration_s
            entry["max_s"] = max(entry["max_s"], span.duration_s)
            entry["cpu_s"] += span.cpu_s
        for entry in totals.values():
            entry["total_s"] = round(entry["total_s"], 9)
            entry["max_s"] = round(entry["max_s"], 9)
            entry["cpu_s"] = round(entry["cpu_s"], 9)
        return dict(sorted(totals.items()))


class NullTracer:
    """The default tracer: every span is the shared no-op singleton."""

    def span(self, name: str, attrs: dict | None = None) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> list[Span]:
        return []

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def summary(self) -> dict[str, dict]:
        return {}


#: The shared off-switch tracer (identity-comparable: ``is NULL_TRACER``).
NULL_TRACER = NullTracer()

_ACTIVE: Tracer | NullTracer = NULL_TRACER
_ACTIVE_LOCK = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer instrumented code opens spans on."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Scope ``tracer`` to a ``with`` block, restoring the old one after.

    Process-wide, not thread-local: concurrent threads started inside the
    block (sweep coordinator threads, job workers) inherit it, which is
    exactly what ``repro explore --trace`` wants.
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def reset_tracing() -> None:
    """Back to the no-op default (test isolation)."""
    set_tracer(NULL_TRACER)

"""The canonical metric-family name table.

Every instrumented call site imports its family name from here, and the
``obs-smoke`` CI job asserts :data:`REQUIRED_FAMILIES` are all present
in a live ``/v3/metrics`` scrape — so renaming a metric is a loud,
single-file change instead of silent dashboard drift.

Naming follows Prometheus conventions: ``repro_`` prefix, base units in
the name (``_seconds``), ``_total`` suffix on counters. Labels are
listed next to each family; keep cardinality bounded (enums only, never
job ids or paths).
"""

from __future__ import annotations

# -- solver (core/solver.py) -------------------------------------------------
#: Counter{scheme=perf|ppc, warm=cold|accepted|rejected}: entry-point solves.
SOLVER_SOLVES = "repro_solver_solves_total"
#: Counter{scheme}: individual multi-start seed attempts.
SOLVER_STARTS = "repro_solver_starts_total"
#: Histogram{scheme}: wall time of one entry-point solve.
SOLVER_SECONDS = "repro_solver_solve_seconds"

# -- service memos (api/service.py) ------------------------------------------
#: Counter{kind=optimize|batch}: requests dispatched through LibraService.
SERVICE_REQUESTS = "repro_service_requests_total"
#: Counter{outcome=hit|miss}: engine memo consultations (miss == compile).
SERVICE_ENGINE_MEMO = "repro_service_engine_compiles_total"
#: Counter{outcome=hit|miss|store}: solution memo reads and writes.
SERVICE_SOLUTION_MEMO = "repro_service_solution_memo_total"

# -- result cache (explore/cache.py) -----------------------------------------
#: Counter{tier=memory|disk, outcome=hit|miss}: ResultCache lookups.
CACHE_LOOKUPS = "repro_cache_lookups_total"
#: Counter: results stored via ResultCache.put.
CACHE_WRITES = "repro_cache_writes_total"
#: Counter: memory-tier LRU evictions.
CACHE_EVICTIONS = "repro_cache_evictions_total"
#: Counter: corrupt/truncated disk entries quarantined (renamed .corrupt).
CACHE_CORRUPT = "repro_cache_corrupt_total"

# -- sweep executor (explore/executor.py) ------------------------------------
#: Counter{status=cached|solved|error}: grid cells resolved.
SWEEP_CELLS = "repro_sweep_cells_total"
#: Counter: continuation chains executed.
SWEEP_CHAINS = "repro_sweep_chains_total"

# -- job manager (serve/manager.py) ------------------------------------------
#: Counter{kind=optimize|batch}: jobs accepted (dedupe hits not counted).
JOBS_SUBMITTED = "repro_jobs_submitted_total"
#: Counter{state=succeeded|failed|cancelled}: jobs reaching a terminal state.
JOBS_COMPLETED = "repro_jobs_completed_total"
#: Gauge: jobs currently running.
JOBS_ACTIVE = "repro_jobs_active"
#: Gauge: jobs queued but not yet running.
JOB_QUEUE_DEPTH = "repro_job_queue_depth"
#: Histogram: submit → running latency.
JOB_QUEUE_SECONDS = "repro_job_queue_seconds"
#: Histogram: running → terminal latency.
JOB_RUN_SECONDS = "repro_job_run_seconds"

# -- durability (serve/store.py, serve/manager.py, explore/executor.py) ------
#: Counter: unfinished jobs re-enqueued by the startup recovery pass.
JOBS_RECOVERED = "repro_jobs_recovered_total"
#: Counter: transient-failure retries (job requeues and chain requeues).
JOB_RETRIES = "repro_job_retries_total"
#: Histogram: JobStore fsync latency (event-log batches and records).
STORE_FSYNC_SECONDS = "repro_store_fsync_seconds"
#: Counter: job directories without an intact record skipped by load().
STORE_ORPHANS = "repro_store_orphans_total"
#: Counter: disk-tier cache hits on entries written by another process.
CACHE_PEER_HITS = "repro_cache_peer_hits_total"

# -- fleet (serve/fleet.py) ---------------------------------------------------
# These four only register on servers started with ``--fleet``, so they
# are deliberately NOT in REQUIRED_FAMILIES (obs-smoke scrapes a plain
# single server).
#: Counter{outcome=won|lost}: lease-claim attempts.
FLEET_CLAIMS = "repro_fleet_claims_total"
#: Counter: stale leases taken over from a dead/silent peer.
FLEET_TAKEOVERS = "repro_fleet_takeovers_total"
#: Counter{outcome=ok|lost}: heartbeat lease renewals.
FLEET_RENEWALS = "repro_fleet_lease_renewals_total"
#: Gauge: leases this server currently holds.
FLEET_LEASES_HELD = "repro_fleet_leases_held"

# -- analysis (repro/analysis, api/service.py) -------------------------------
#: Counter{source=cache|inline|solve}: analyze requests by target resolution.
ANALYZE_REQUESTS = "repro_analyze_requests_total"
#: Histogram: wall time of one analyze request end to end.
ANALYZE_SECONDS = "repro_analyze_seconds"
#: Counter{layer=service|whatif}: probes served from a memo.
ANALYZE_MEMO = "repro_analyze_memo_hits_total"

# -- strategy co-optimization (repro/strategy, api/service.py) ----------------
#: Counter{outcome=solved|cached|error|pruned}: joint-search candidate cells
#: resolved (one series per strategy × budget cell; pruned counts strategies
#: removed from the space before any cell ran).
STRATEGY_CANDIDATES = "repro_strategy_candidates_total"
#: Histogram: wall time of one joint strategy × bandwidth search.
STRATEGY_SECONDS = "repro_strategy_search_seconds"

# -- HTTP front end (serve/http.py) ------------------------------------------
#: Counter{route, status}: requests served, by normalized route template.
HTTP_REQUESTS = "repro_http_requests_total"
#: Histogram{route}: request handling wall time.
HTTP_SECONDS = "repro_http_request_seconds"

#: Families the obs-smoke CI job requires in a live scrape after it has
#: run one optimize job and one cache-backed batch job. (Gauges render
#: even at zero once registered; counters with enum labels appear once
#: any series fires; the durability and analyze families are pre-registered
#: at server construction so a healthy-but-never-crashed (or never-analyzed)
#: server still scrapes them at zero. ``CACHE_EVICTIONS`` is the one family
#: deliberately absent: it needs a bounded memory tier to overflow, which
#: no smoke run does. The ``repro_fleet_*`` families are likewise absent:
#: they register only on ``--fleet`` servers, which obs-smoke does not run.)
REQUIRED_FAMILIES = (
    SOLVER_SOLVES,
    SOLVER_STARTS,
    SOLVER_SECONDS,
    SERVICE_REQUESTS,
    SERVICE_ENGINE_MEMO,
    SERVICE_SOLUTION_MEMO,
    CACHE_LOOKUPS,
    CACHE_WRITES,
    SWEEP_CELLS,
    SWEEP_CHAINS,
    JOBS_SUBMITTED,
    JOBS_COMPLETED,
    JOBS_ACTIVE,
    JOB_QUEUE_DEPTH,
    JOB_QUEUE_SECONDS,
    JOB_RUN_SECONDS,
    JOBS_RECOVERED,
    JOB_RETRIES,
    STORE_FSYNC_SECONDS,
    STORE_ORPHANS,
    CACHE_CORRUPT,
    CACHE_PEER_HITS,
    ANALYZE_REQUESTS,
    ANALYZE_SECONDS,
    ANALYZE_MEMO,
    STRATEGY_CANDIDATES,
    STRATEGY_SECONDS,
    HTTP_REQUESTS,
    HTTP_SECONDS,
)

"""Structured logging for the repro CLI and serve tier.

A thin policy layer over the stdlib :mod:`logging` module — no new
concepts, just three decisions made once:

* **Namespace.** Every logger lives under ``"repro."``
  (:func:`get_logger`), so one call configures the whole system and
  host applications embedding the library can route or silence it as a
  unit.
* **Silence by default.** Importing the library never prints: the root
  ``repro`` logger carries a :class:`logging.NullHandler` until
  :func:`setup_logging` is called (by ``repro serve --log-level ...``,
  ``REPRO_LOG=info``, or an embedding application).
* **One line, two formats.** Human format is ``ts level logger message
  key=value...``; JSON format is one object per line with the same
  fields (``ts``, ``level``, ``logger``, ``msg``, plus any extras) —
  what log shippers want, still greppable.

Extra fields ride the stdlib ``extra=`` mechanism::

    log = get_logger("serve.http")
    log.info("request", extra={"fields": {"path": "/v3/jobs", "status": 200}})

``fields`` is a single dict key rather than loose ``extra`` keys so the
formatter can tell structured payload from :class:`logging.LogRecord`
internals without a denylist.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

#: Environment variable consulted for the default level; same values as
#: ``--log-level`` (debug/info/warning/error, case-insensitive).
ENV_VAR = "REPRO_LOG"

_ROOT_NAME = "repro"
_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_root = logging.getLogger(_ROOT_NAME)
_root.addHandler(logging.NullHandler())

#: The handler installed by setup_logging, tracked so reconfiguration
#: replaces it instead of stacking duplicates.
_installed: logging.Handler | None = None


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("serve.http")``)."""
    if not name:
        return _root
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def _record_fields(record: logging.LogRecord) -> dict:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, then extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_record_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """``ts level logger message key=value ...`` for terminals."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
        )
        parts = [
            stamp,
            record.levelname.lower(),
            record.name,
            record.getMessage(),
        ]
        for key, value in sorted(_record_fields(record).items()):
            parts.append(f"{key}={value}")
        line = " ".join(str(part) for part in parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def parse_level(level: str) -> int:
    """Map a ``--log-level`` string to a :mod:`logging` level (or raise)."""
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        ) from None


def setup_logging(
    level: str | int | None = None,
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """Route ``repro.*`` logs to ``stream`` (default stderr) at ``level``.

    ``level=None`` consults :data:`ENV_VAR` and falls back to ``info``.
    Idempotent: calling again replaces the previous configuration rather
    than stacking handlers, so tests and re-execs stay single-line.
    Returns the root ``repro`` logger.
    """
    global _installed
    if level is None:
        level = os.environ.get(ENV_VAR) or "info"
    resolved = parse_level(level) if isinstance(level, str) else int(level)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_format else HumanFormatter())
    if _installed is not None:
        _root.removeHandler(_installed)
    _root.addHandler(handler)
    _root.setLevel(resolved)
    _root.propagate = False
    _installed = handler
    return _root


def reset_logging() -> None:
    """Remove the installed handler; back to silent default (tests)."""
    global _installed
    if _installed is not None:
        _root.removeHandler(_installed)
        _installed = None
    _root.setLevel(logging.NOTSET)

"""Observability: tracing, metrics, and structured logging.

Three independent pillars, each off by default and each stdlib-only:

* :mod:`repro.obs.trace` — nested spans with Chrome trace-event export
  (``Tracer``, ``use_tracer``; ``repro explore --trace out.json``).
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with Prometheus text rendering (``enable_metrics``, ``GET /v3/metrics``).
* :mod:`repro.obs.log` — the stdlib :mod:`logging` configured once, in
  human or JSON format (``setup_logging``, ``REPRO_LOG``).

"Off" means the module-level accessors hand out shared no-op singletons
(:data:`NULL_TRACER`, :data:`NULL_REGISTRY`, a ``NullHandler`` root), so
instrumentation in hot paths costs an attribute lookup and an empty
call — the BENCH_solver / BENCH_sweep CI floors hold either way.
:mod:`repro.obs.names` is the canonical metric-name table; the
``obs-smoke`` CI job pins it against a live scrape.
"""

from repro.obs.log import get_logger, reset_logging, setup_logging
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    enable_metrics,
    get_registry,
    reset_metrics,
    set_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    reset_tracing,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_REGISTRY",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Tracer",
    "enable_metrics",
    "get_logger",
    "get_registry",
    "get_tracer",
    "reset_logging",
    "reset_metrics",
    "reset_tracing",
    "set_registry",
    "set_tracer",
    "setup_logging",
    "use_tracer",
]

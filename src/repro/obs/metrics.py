"""Process-local metrics: counters, gauges, histograms, Prometheus text.

The registry is the aggregation point: instrumented code asks it for a
*family* (``registry.counter("repro_solver_solves_total", ...)``) and
bumps a *series* of that family (``family.labels(scheme="perf").inc()``).
Families are created on first use and returned unchanged afterwards, so
call sites never coordinate — they just name the metric they mean
(:mod:`repro.obs.names` is the canonical name table).

Everything here is stdlib-only and thread-safe: one lock per registry
guards family creation, one lock per family guards its series map, and
the scalar bumps themselves happen under the family lock — a threaded
sweep incrementing one counter from eight workers never loses a tick.

**Off by default.** :func:`get_registry` returns :data:`NULL_REGISTRY` — a
registry whose instruments are shared do-nothing singletons — until
:func:`enable_metrics` (or :func:`set_registry`) installs a real one.
Instrumented hot paths therefore cost two attribute lookups and a no-op
call when observability is off, which is what keeps the BENCH_* floors
honest.

Rendering follows the Prometheus text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` per family, one line per series, histograms as
cumulative ``_bucket{le=...}`` plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping

from repro.utils.errors import ConfigurationError

#: Fixed histogram buckets (seconds). Chosen to straddle the system's
#: real latencies: sub-ms cache lookups, 10ms–10s solves, minutes-long
#: sweep jobs. Fixed (not configurable per call site) so every duration
#: family renders and aggregates identically.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ConfigurationError(
            f"metric name {name!r} must be non-empty [a-zA-Z0-9_]"
        )


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN (a failed gauge callback renders, not raises)
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _series_suffix(label_names: tuple[str, ...], label_values: tuple[str, ...],
                   extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """Common machinery of one metric family (shared by all three types)."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]):
        _validate_name(name)
        for label in label_names:
            _validate_name(label)
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def labels(self, **labels: str):
        """The series for one label-value combination (created on demand)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._make_series()
                self._series[key] = series
            return series

    def _default_series(self):
        """The single series of a label-less family."""
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name} requires labels {self.label_names}"
            )
        return self.labels()

    def _make_series(self):  # pragma: no cover — overridden
        raise NotImplementedError

    def _snapshot(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._series.items())

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.metric_type}",
        ]
        for key, series in self._snapshot():
            lines.extend(self._render_series(key, series))
        return lines

    def _render_series(self, key, series) -> list[str]:  # pragma: no cover
        raise NotImplementedError


class _CounterSeries:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) is not allowed"
            )
        with self._lock:
            self.value += amount


class Counter(_Family):
    """A monotonically increasing count (events, hits, errors)."""

    metric_type = "counter"

    def _make_series(self):
        return _CounterSeries(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_series().inc(amount)

    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 if it never fired)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0.0 if series is None else series.value

    def _render_series(self, key, series) -> list[str]:
        suffix = _series_suffix(self.label_names, key)
        return [f"{self.name}{suffix} {_format_value(series.value)}"]


class _GaugeSeries:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0
        self._fn = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn) -> None:
        """Compute the value at scrape time (live queue depths etc.)."""
        with self._lock:
            self._fn = fn

    def read(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:  # called outside the lock: fn may itself take locks
            return float(fn())
        except Exception:  # noqa: BLE001 — a scrape must never throw
            return float("nan")


class Gauge(_Family):
    """A value that can go up and down (depths, in-flight counts)."""

    metric_type = "gauge"

    def _make_series(self):
        return _GaugeSeries(self._lock)

    def set(self, value: float) -> None:
        self._default_series().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_series().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_series().dec(amount)

    def set_function(self, fn) -> None:
        self._default_series().set_function(fn)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
        return 0.0 if series is None else series.read()

    def _render_series(self, key, series) -> list[str]:
        suffix = _series_suffix(self.label_names, key)
        return [f"{self.name}{suffix} {_format_value(series.read())}"]

    def _snapshot(self):
        # Gauge functions run outside the family lock (see _GaugeSeries.read),
        # so snapshot only the series map here.
        with self._lock:
            return sorted(self._series.items())


class _HistogramSeries:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1


class Histogram(_Family):
    """A distribution with fixed buckets (latencies, durations)."""

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ConfigurationError("histogram needs at least one bucket")

    def _make_series(self):
        return _HistogramSeries(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_series().observe(value)

    def observations(self, **labels: str) -> tuple[int, float]:
        """``(count, sum)`` of one series (``(0, 0.0)`` if never observed)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return (0, 0.0) if series is None else (series.count, series.sum)

    def _render_series(self, key, series) -> list[str]:
        # series.counts is already cumulative (observe bumps every bucket
        # whose bound covers the value), matching Prometheus bucket rules.
        lines = []
        for bound, bucket_count in zip(series.buckets, series.counts):
            suffix = _series_suffix(
                self.label_names, key, extra=f'le="{_format_value(bound)}"'
            )
            lines.append(f"{self.name}_bucket{suffix} {bucket_count}")
        inf_suffix = _series_suffix(self.label_names, key, extra='le="+Inf"')
        lines.append(f"{self.name}_bucket{inf_suffix} {series.count}")
        plain = _series_suffix(self.label_names, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(series.sum)}")
        lines.append(f"{self.name}_count{plain} {series.count}")
        return lines


class MetricsRegistry:
    """A process-local family table with Prometheus text rendering.

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*: the first
    call registers the family, later calls return it (and reject a
    conflicting redefinition — one name, one type, one label set).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labels, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls) or family.label_names != labels:
            raise ConfigurationError(
                f"metric {name} is already registered as a "
                f"{family.metric_type} with labels {family.label_names}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def families(self) -> list[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


class _NullInstrument:
    """One shared do-nothing series/family — the off switch's hot path."""

    metric_type = "null"
    buckets = DEFAULT_BUCKETS

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def observations(self, **labels: str) -> tuple[int, float]:
        return (0, 0.0)

    def render(self) -> list[str]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default registry: every instrument is a shared no-op."""

    def counter(self, name, help="", labels=()):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def families(self) -> list[str]:
        return []

    def render(self) -> str:
        return ""


#: The shared off-switch registry (identity-comparable: ``is NULL_REGISTRY``).
NULL_REGISTRY = NullRegistry()

_ACTIVE: MetricsRegistry | NullRegistry = NULL_REGISTRY
_ACTIVE_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide registry instrumented code reports into."""
    return _ACTIVE


def set_registry(
    registry: MetricsRegistry | NullRegistry,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the process-wide target; returns the old one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Turn metrics on (idempotent); returns the live registry.

    Installs a fresh :class:`MetricsRegistry` if the process is still on
    :data:`NULL_REGISTRY`; an already-enabled process keeps its registry
    (two servers in one process must share one scrape surface).
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if isinstance(_ACTIVE, NullRegistry):
            _ACTIVE = MetricsRegistry()
        return _ACTIVE


def reset_metrics() -> None:
    """Back to the no-op default (test isolation)."""
    set_registry(NULL_REGISTRY)

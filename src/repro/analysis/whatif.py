"""What-if perturbation queries against a solved design point.

A designer holding an optimal allocation asks cheap counterfactuals:
*what if dimension 2 had 10% more bandwidth? what if I moved 50 GB/s from
dim 0 to dim 3? what if the budget grew by 100 GB/s?* Each query is a
deterministic perturbation of the bandwidth vector re-evaluated through
the memoized :func:`~repro.training.expr.vector_evaluator` — no solver
run, microseconds per probe once the expression is flattened.

Repeat probes are served from :class:`WhatIfMemo`, a bounded
content-addressed LRU keyed on the digest of *(context, point, query)* —
the same digest discipline as the explore cache, so identical questions
against a cached sweep grid are sub-millisecond and counted on
``repro_analyze_memo_hits_total{layer="whatif"}``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.training.expr import Expr, vector_evaluator
from repro.utils.canonical import digest
from repro.utils.errors import ConfigurationError
from repro.utils.units import GBPS

#: Operations a :class:`WhatIfQuery` can express.
WHATIF_OPS = ("scale", "move", "budget")


def _memo_hit_counter():
    return obs_metrics.get_registry().counter(
        obs_names.ANALYZE_MEMO,
        "What-if probes served from a memo instead of re-evaluation.",
        labels=("layer",),
    )


@dataclass(frozen=True)
class WhatIfQuery:
    """One perturbation of a design point.

    Exactly one of three shapes, selected by ``op``:

    * ``"scale"`` — multiply dimension ``dim`` by ``factor``;
    * ``"move"`` — shift ``delta_gbps`` from ``source`` to ``target``
      (budget-preserving);
    * ``"budget"`` — grow/shrink the total by ``delta_gbps``, rescaling
      every dimension proportionally.
    """

    op: str
    dim: int | None = None
    factor: float | None = None
    source: int | None = None
    target: int | None = None
    delta_gbps: float | None = None

    def __post_init__(self):
        if self.op not in WHATIF_OPS:
            raise ConfigurationError(
                f"what-if op must be one of {WHATIF_OPS}, got {self.op!r}"
            )
        if self.op == "scale":
            if self.dim is None or self.factor is None:
                raise ConfigurationError("scale query needs dim and factor")
            if self.factor <= 0:
                raise ConfigurationError(
                    f"scale factor must be positive, got {self.factor}"
                )
        elif self.op == "move":
            if self.source is None or self.target is None or self.delta_gbps is None:
                raise ConfigurationError(
                    "move query needs source, target, and delta_gbps"
                )
            if self.source == self.target:
                raise ConfigurationError("move source and target must differ")
            if self.delta_gbps <= 0:
                raise ConfigurationError(
                    f"move delta_gbps must be positive, got {self.delta_gbps}"
                )
        else:  # budget
            if self.delta_gbps is None:
                raise ConfigurationError("budget query needs delta_gbps")

    def label(self) -> str:
        if self.op == "scale":
            return f"scale dim{self.dim} x{self.factor:g}"
        if self.op == "move":
            return f"move {self.delta_gbps:g} GB/s dim{self.source}->dim{self.target}"
        sign = "+" if self.delta_gbps >= 0 else ""
        return f"budget {sign}{self.delta_gbps:g} GB/s"

    def apply(self, bandwidths: Sequence[float]) -> tuple[float, ...]:
        """The perturbed point (bytes/s in, bytes/s out)."""
        point = np.asarray(bandwidths, dtype=float).copy()
        num = point.size

        def check_dim(dim: int, name: str) -> None:
            if not 0 <= dim < num:
                raise ConfigurationError(
                    f"what-if {name} {dim} out of range for {num} dims"
                )

        if self.op == "scale":
            check_dim(self.dim, "dim")
            point[self.dim] *= self.factor
        elif self.op == "move":
            check_dim(self.source, "source")
            check_dim(self.target, "target")
            delta = self.delta_gbps * GBPS
            point[self.source] -= delta
            point[self.target] += delta
        else:
            total = point.sum()
            new_total = total + self.delta_gbps * GBPS
            if new_total <= 0:
                raise ConfigurationError(
                    f"budget delta {self.delta_gbps} GB/s empties the "
                    f"{total / GBPS:g} GB/s budget"
                )
            point *= new_total / total
        if np.any(point <= 0):
            raise ConfigurationError(
                f"what-if '{self.label()}' drives a bandwidth non-positive"
            )
        return tuple(float(v) for v in point)

    def to_dict(self) -> dict:
        payload: dict = {"op": self.op}
        for field in ("dim", "factor", "source", "target", "delta_gbps"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> WhatIfQuery:
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"what-if query must be a mapping, got {type(payload).__name__}"
            )
        try:
            return cls(
                op=str(payload["op"]),
                dim=None if payload.get("dim") is None else int(payload["dim"]),
                factor=(
                    None if payload.get("factor") is None
                    else float(payload["factor"])
                ),
                source=(
                    None if payload.get("source") is None
                    else int(payload["source"])
                ),
                target=(
                    None if payload.get("target") is None
                    else int(payload["target"])
                ),
                delta_gbps=(
                    None if payload.get("delta_gbps") is None
                    else float(payload["delta_gbps"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad what-if query payload: {exc}") from exc


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one query: the perturbed point and its step time."""

    query: WhatIfQuery
    bandwidths: tuple[float, ...]  # perturbed point, bytes/s
    step_time: float
    base_step_time: float

    @property
    def delta_step_time(self) -> float:
        return self.step_time - self.base_step_time

    @property
    def speedup(self) -> float:
        return self.base_step_time / self.step_time if self.step_time else 0.0

    def to_dict(self) -> dict:
        return {
            "query": self.query.to_dict(),
            "bandwidths_gbps": [b / GBPS for b in self.bandwidths],
            "step_time": self.step_time,
            "base_step_time": self.base_step_time,
            "delta_step_time": self.delta_step_time,
            "speedup": self.speedup,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> WhatIfResult:
        try:
            return cls(
                query=WhatIfQuery.from_dict(payload["query"]),
                bandwidths=tuple(
                    float(b) * GBPS for b in payload["bandwidths_gbps"]
                ),
                step_time=float(payload["step_time"]),
                base_step_time=float(payload["base_step_time"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad what-if result payload: {exc}") from exc


class WhatIfMemo:
    """Bounded, thread-safe, content-addressed memo of what-if results.

    Keys are SHA-256 digests of *(context, bandwidths, query)* — context
    being whatever identifies the expression (a scenario key, an engine
    key), so two scenarios never collide and restating the same question
    is a hit regardless of which code path asks.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._entries: OrderedDict[str, WhatIfResult] = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key(
        context: str, bandwidths: Sequence[float], query: WhatIfQuery
    ) -> str:
        return digest(
            {
                "context": context,
                "bandwidths": [float(b) for b in bandwidths],
                "query": query.to_dict(),
            }
        )

    def get(self, key: str) -> WhatIfResult | None:
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        _memo_hit_counter().labels(layer="whatif").inc()
        return cached

    def put(self, key: str, result: WhatIfResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._entries),
            }


def default_queries(
    num_dims: int, scale_factor: float = 1.1
) -> tuple[WhatIfQuery, ...]:
    """The standard per-dimension probes: scale each dim by ``factor``.

    :func:`evaluate_whatifs` appends budget ±10% probes sized from the
    point's own total, making the full default set deterministic
    (``num_dims + 2`` probes) so repeated analyze requests for one point
    are memo hits end to end.
    """
    return tuple(
        WhatIfQuery(op="scale", dim=dim, factor=scale_factor)
        for dim in range(num_dims)
    )


def evaluate_whatifs(
    expression: Expr,
    bandwidths: Sequence[float],
    queries: Sequence[WhatIfQuery] = (),
    memo: WhatIfMemo | None = None,
    context: str = "",
) -> tuple[WhatIfResult, ...]:
    """Answer queries by re-evaluation through the memoized evaluator.

    With no explicit queries, probes a default set: each dimension scaled
    ×1.1 plus the total budget ±10% (``num_dims + 2`` evaluations).

    Args:
        expression: Combined training-time expression.
        bandwidths: Base point, bytes/s.
        queries: Perturbations to evaluate (default set when empty).
        memo: Optional :class:`WhatIfMemo`; hits skip evaluation.
        context: Content namespace for memo keys (scenario/engine key).
    """
    point = np.asarray(bandwidths, dtype=float)
    if point.ndim != 1 or point.size == 0:
        raise ConfigurationError("bandwidths must be a non-empty vector")
    if np.any(point <= 0):
        raise ConfigurationError(f"bandwidths must be positive, got {point}")
    if not queries:
        budget_delta = 0.1 * float(point.sum()) / GBPS
        queries = default_queries(point.size) + (
            WhatIfQuery(op="budget", delta_gbps=budget_delta),
            WhatIfQuery(op="budget", delta_gbps=-budget_delta),
        )

    evaluate = vector_evaluator(expression)
    base_time = float(evaluate(point))
    results: list[WhatIfResult] = []
    for query in queries:
        key = None
        if memo is not None:
            key = memo.key(context, point, query)
            cached = memo.get(key)
            if cached is not None:
                results.append(cached)
                continue
        perturbed = query.apply(point)
        result = WhatIfResult(
            query=query,
            bandwidths=perturbed,
            step_time=float(evaluate(np.asarray(perturbed))),
            base_step_time=base_time,
        )
        if memo is not None and key is not None:
            memo.put(key, result)
        results.append(result)
    return tuple(results)

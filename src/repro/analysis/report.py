"""The wire- and human-facing shape of one analysis.

:class:`AnalysisReport` flattens a :class:`~repro.analysis.structure.
BottleneckStructure` plus its what-if results into a JSON-stable payload
(plain floats, GB/s at this boundary per the library convention) with the
same versioned ``to_dict``/``from_dict`` discipline as ``DesignPoint`` —
``json.dumps`` round-trips with no custom encoder. :func:`format_report`
renders the table the ``repro analyze`` CLI prints.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.structure import BottleneckStructure, ConstraintAttribution
from repro.analysis.whatif import WhatIfResult
from repro.utils.errors import ConfigurationError
from repro.utils.units import GBPS

#: Layout version of the :meth:`AnalysisReport.to_dict` payload.
ANALYSIS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AnalysisReport:
    """One design point's bottleneck structure and what-if outcomes.

    Bandwidths are GB/s (this is a wire boundary); marginal-value fields
    are seconds per GB/s with the analytic sign (≤ 0 — more bandwidth
    never hurts).

    Attributes:
        scheme: Scheme the analyzed point was produced under.
        bandwidths_gbps: The analyzed allocation.
        step_time: Step seconds at the point.
        marginals_per_gbps: Backward (kink-correct) ``dT/dB_i``.
        kink_gaps_per_gbps: ``forward − backward`` slope per dimension;
            ≈ 0 where smooth, ``~T/B_i`` on a water-filling kink.
        binding_dims: Dimensions binding under the backward marginals.
        most_valuable_dim: Where the next GB/s helps most.
        transfer_matrix_per_gbps: ``G[i][j]`` seconds saved per GB/s
            moved i→j (antisymmetric).
        attributions: Constraint rows at the point (may be empty).
        wasteless_gbps: Traffic-proportional baseline, or ``None``.
        wasteless_gap_gbps: ``B − baseline`` per dimension, or ``None``.
        certificate: Direct-re-evaluation optimality certificate.
        whatifs: Evaluated perturbation queries.
    """

    scheme: str
    bandwidths_gbps: tuple[float, ...]
    step_time: float
    marginals_per_gbps: tuple[float, ...]
    kink_gaps_per_gbps: tuple[float, ...]
    binding_dims: tuple[int, ...]
    most_valuable_dim: int
    transfer_matrix_per_gbps: tuple[tuple[float, ...], ...]
    attributions: tuple[ConstraintAttribution, ...]
    wasteless_gbps: tuple[float, ...] | None
    wasteless_gap_gbps: tuple[float, ...] | None
    certificate: dict
    whatifs: tuple[WhatIfResult, ...]

    def to_dict(self) -> dict:
        return {
            "analysis_schema_version": ANALYSIS_SCHEMA_VERSION,
            "scheme": self.scheme,
            "bandwidths_gbps": list(self.bandwidths_gbps),
            "step_time": self.step_time,
            "marginals_per_gbps": list(self.marginals_per_gbps),
            "kink_gaps_per_gbps": list(self.kink_gaps_per_gbps),
            "binding_dims": list(self.binding_dims),
            "most_valuable_dim": self.most_valuable_dim,
            "transfer_matrix_per_gbps": [
                list(row) for row in self.transfer_matrix_per_gbps
            ],
            "attributions": [row.to_dict() for row in self.attributions],
            "wasteless_gbps": (
                None if self.wasteless_gbps is None
                else list(self.wasteless_gbps)
            ),
            "wasteless_gap_gbps": (
                None if self.wasteless_gap_gbps is None
                else list(self.wasteless_gap_gbps)
            ),
            "certificate": dict(self.certificate),
            "whatifs": [result.to_dict() for result in self.whatifs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> AnalysisReport:
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"analysis payload must be a mapping, got {type(payload).__name__}"
            )
        version = payload.get("analysis_schema_version")
        if version != ANALYSIS_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported analysis_schema_version {version!r} "
                f"(this release reads {ANALYSIS_SCHEMA_VERSION})"
            )
        try:
            return cls(
                scheme=str(payload["scheme"]),
                bandwidths_gbps=tuple(
                    float(v) for v in payload["bandwidths_gbps"]
                ),
                step_time=float(payload["step_time"]),
                marginals_per_gbps=tuple(
                    float(v) for v in payload["marginals_per_gbps"]
                ),
                kink_gaps_per_gbps=tuple(
                    float(v) for v in payload["kink_gaps_per_gbps"]
                ),
                binding_dims=tuple(int(d) for d in payload["binding_dims"]),
                most_valuable_dim=int(payload["most_valuable_dim"]),
                transfer_matrix_per_gbps=tuple(
                    tuple(float(v) for v in row)
                    for row in payload["transfer_matrix_per_gbps"]
                ),
                attributions=tuple(
                    ConstraintAttribution.from_dict(row)
                    for row in payload["attributions"]
                ),
                wasteless_gbps=(
                    None if payload.get("wasteless_gbps") is None
                    else tuple(float(v) for v in payload["wasteless_gbps"])
                ),
                wasteless_gap_gbps=(
                    None if payload.get("wasteless_gap_gbps") is None
                    else tuple(float(v) for v in payload["wasteless_gap_gbps"])
                ),
                certificate=dict(payload["certificate"]),
                whatifs=tuple(
                    WhatIfResult.from_dict(row) for row in payload["whatifs"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad analysis payload: {exc}") from exc


def build_report(
    structure: BottleneckStructure,
    whatifs: Sequence[WhatIfResult] = (),
    scheme: str = "",
) -> AnalysisReport:
    """Assemble the wire report from the computed structure (GB/s boundary)."""
    gap = structure.wasteless_gap()
    return AnalysisReport(
        scheme=scheme,
        bandwidths_gbps=structure.bandwidths_gbps(),
        step_time=structure.step_time,
        marginals_per_gbps=tuple(m * GBPS for m in structure.marginals),
        kink_gaps_per_gbps=tuple(g * GBPS for g in structure.kink_gaps),
        binding_dims=structure.binding_dims,
        most_valuable_dim=structure.most_valuable_dim,
        transfer_matrix_per_gbps=tuple(
            tuple(v * GBPS for v in row) for row in structure.transfer_matrix
        ),
        attributions=structure.attributions,
        wasteless_gbps=(
            None if structure.wasteless is None
            else tuple(b / GBPS for b in structure.wasteless)
        ),
        wasteless_gap_gbps=(
            None if gap is None else tuple(b / GBPS for b in gap)
        ),
        certificate=dict(structure.certificate),
        whatifs=tuple(whatifs),
    )


def format_report(report: AnalysisReport) -> str:
    """Render the report as the human table ``repro analyze`` prints."""
    lines: list[str] = []
    scheme = f" ({report.scheme})" if report.scheme else ""
    lines.append(f"Analysis{scheme}: step time {report.step_time * 1e3:.3f} ms")
    lines.append("")
    lines.append(
        f"{'dim':>3}  {'GB/s':>9}  {'dT/dGBps':>11}  {'kink gap':>10}  "
        f"{'wasteless':>9}  {'gap':>8}  flags"
    )
    certified = report.certificate.get("certified")
    for dim, bandwidth in enumerate(report.bandwidths_gbps):
        flags = []
        if dim in report.binding_dims:
            flags.append("binding")
        if dim == report.most_valuable_dim:
            flags.append("best")
        wasteless = (
            f"{report.wasteless_gbps[dim]:9.1f}"
            if report.wasteless_gbps is not None else f"{'—':>9}"
        )
        gap = (
            f"{report.wasteless_gap_gbps[dim]:8.1f}"
            if report.wasteless_gap_gbps is not None else f"{'—':>8}"
        )
        lines.append(
            f"{dim:>3}  {bandwidth:9.1f}  "
            f"{report.marginals_per_gbps[dim]:11.3e}  "
            f"{report.kink_gaps_per_gbps[dim]:10.3e}  "
            f"{wasteless}  {gap}  {' '.join(flags)}"
        )
    lines.append("")
    lines.append(
        "optimum certificate: "
        + (
            "certified"
            if certified
            else f"improvable (best gain {report.certificate.get('best_gain', 0):.2e})"
        )
    )
    binding_rows = [row for row in report.attributions if row.binding]
    if binding_rows:
        lines.append("")
        lines.append("binding constraint rows:")
        for row in binding_rows:
            lines.append(f"  [{row.kind}] {row.label}")
    if report.whatifs:
        lines.append("")
        lines.append(f"{'what-if':<34}  {'step ms':>9}  {'delta ms':>10}  {'speedup':>8}")
        for result in report.whatifs:
            lines.append(
                f"{result.query.label():<34}  "
                f"{result.step_time * 1e3:9.3f}  "
                f"{result.delta_step_time * 1e3:+10.3f}  "
                f"{result.speedup:8.3f}"
            )
    return "\n".join(lines)

"""Bottleneck-structure computation for a solved design point.

LIBRA answers *which* allocation is optimal; this module answers *why*.
Given the training-time expression and a bandwidth vector, it computes:

* the **binding set** — kink-aware, via one-sided backward differences
  (at a water-filling optimum the backward slope is the real price of
  losing bandwidth; the forward slope is ~0 on every loaded dimension);
* the per-dimension **kink gap** (``backward − forward`` slope), a direct
  detector of which dimensions sit on a water-filling kink;
* **constraint-row attribution** — every row of the compiled
  :class:`~repro.core.kernel.ConstraintBlocks` (designer equalities and
  inequalities, max-epigraph rows, hyperbolic comm rows) evaluated at the
  point, with binding rows flagged, so "the budget binds" or "dimension 2
  attains the all-reduce max" is a statement about a named row;
* the **transfer-gradient matrix** ``G[i][j] = m_i − m_j`` (antisymmetric
  by construction) — the benefit of moving budget between dimensions;
* the **wasteless-baseline gap** — distance from the traffic-proportional
  allocation, the exact optimum of a single collective under a pure
  budget (the water-filling seed of ``core/solver.py``).

Everything here is read-only over ``core``: it compiles the same cached
programs the solver uses and never mutates solver state.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.constraints import ConstraintSet
from repro.core.sensitivity import (
    bandwidth_sensitivity,
    certify_optimum,
)
from repro.core.solver import (
    _SCALE,
    _proportional_split,
    build_constraint_blocks,
    compile_expression,
    traffic_totals,
)
from repro.training.expr import Expr
from repro.utils.errors import ConfigurationError

#: Relative slack below which a constraint row counts as binding.
ROW_BINDING_RTOL = 1e-6


@dataclass(frozen=True)
class ConstraintAttribution:
    """One constraint row evaluated at the analyzed point.

    Attributes:
        kind: ``"equality"`` | ``"inequality"`` | ``"max"`` | ``"comm"``.
        label: Human-readable row name (designer label, aux id, or dim).
        value: Row residual in solver units — 0 means satisfied exactly
            for equalities; slack (≥ 0 when feasible) for the rest.
        binding: Whether the row is active at the point (residual within
            :data:`ROW_BINDING_RTOL` of zero, relative to the row scale).
        dims: Bandwidth dimensions the row reads (empty for pure-aux rows).
    """

    kind: str
    label: str
    value: float
    binding: bool
    dims: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "value": self.value,
            "binding": self.binding,
            "dims": list(self.dims),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> ConstraintAttribution:
        try:
            return cls(
                kind=str(payload["kind"]),
                label=str(payload["label"]),
                value=float(payload["value"]),
                binding=bool(payload["binding"]),
                dims=tuple(int(d) for d in payload["dims"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad attribution payload: {exc}") from exc


@dataclass(frozen=True)
class BottleneckStructure:
    """The full bottleneck decomposition of one design point.

    Bandwidth-valued fields are bytes/s (library convention); GB/s appears
    only in the wire-format :class:`~repro.analysis.report.AnalysisReport`.

    Attributes:
        bandwidths: Analyzed point, bytes/s.
        step_time: Step seconds at the point.
        marginals: Backward (kink-correct) ``dT/dB_i``, s per byte/s.
        forward_marginals: Forward slopes — ~0 on kinked dimensions.
        kink_gaps: ``forward − backward`` slope per dimension (≥ 0 up to
            noise; ``~T/B_i`` on a water-filling kink).
        binding_dims: Dimensions binding under the backward marginals.
        transfer_matrix: ``G[i][j] = marginals[i] − marginals[j]``.
        attributions: Every compiled constraint row at the point (empty
            when no constraint set was supplied).
        wasteless: Traffic-proportional baseline allocation, bytes/s
            (``None`` when the expression moves no traffic).
        certificate: Direct-re-evaluation optimality certificate payload.
    """

    bandwidths: tuple[float, ...]
    step_time: float
    marginals: tuple[float, ...]
    forward_marginals: tuple[float, ...]
    kink_gaps: tuple[float, ...]
    binding_dims: tuple[int, ...]
    transfer_matrix: tuple[tuple[float, ...], ...]
    attributions: tuple[ConstraintAttribution, ...]
    wasteless: tuple[float, ...] | None
    certificate: dict

    @property
    def most_valuable_dim(self) -> int:
        return int(np.argmin(self.marginals))

    def bandwidths_gbps(self) -> tuple[float, ...]:
        return tuple(b / _SCALE for b in self.bandwidths)

    def wasteless_gap(self) -> tuple[float, ...] | None:
        """Per-dimension ``B_i − wasteless_i`` (bytes/s), or ``None``."""
        if self.wasteless is None:
            return None
        return tuple(
            b - w for b, w in zip(self.bandwidths, self.wasteless)
        )

    def binding_rows(self) -> tuple[ConstraintAttribution, ...]:
        return tuple(row for row in self.attributions if row.binding)


def _row_dims(coeffs: np.ndarray, num_dims: int) -> tuple[int, ...]:
    return tuple(
        int(dim) for dim in np.nonzero(coeffs[:num_dims])[0]
    )


def _attribute_rows(
    program, constraints: ConstraintSet, x: np.ndarray
) -> tuple[ConstraintAttribution, ...]:
    """Label every ConstraintBlocks row, mirroring assembly order exactly.

    The label walk below must track :func:`build_constraint_blocks` —
    equalities in designer order, then inequality expansions (upper before
    lower per row), then max-epigraph rows, then comm rows.
    """
    blocks = build_constraint_blocks(program, constraints)
    values = np.empty(blocks.num_rows)
    blocks.values_into(values, x)
    num_dims = program.num_dims

    rows: list[ConstraintAttribution] = []
    cursor = 0

    def binding(value: float, scale: float) -> bool:
        return abs(value) <= ROW_BINDING_RTOL * max(abs(scale), 1.0)

    for index, row in enumerate(constraints.rows):
        if not row.is_equality:
            continue
        label = row.label or f"eq[{index}]"
        value = float(values[cursor])
        rows.append(
            ConstraintAttribution(
                kind="equality",
                label=label,
                value=value,
                binding=True,  # an equality is active by definition
                dims=tuple(
                    int(d) for d in np.nonzero(np.asarray(row.coeffs))[0]
                ),
            )
        )
        cursor += 1
    for index, row in enumerate(constraints.rows):
        if row.is_equality:
            continue
        label = row.label or f"row[{index}]"
        dims = tuple(int(d) for d in np.nonzero(np.asarray(row.coeffs))[0])
        if row.upper is not None:
            value = float(values[cursor])
            rows.append(
                ConstraintAttribution(
                    kind="inequality",
                    label=f"{label}<=upper",
                    value=value,
                    binding=binding(value, row.upper / _SCALE),
                    dims=dims,
                )
            )
            cursor += 1
        if row.lower is not None:
            value = float(values[cursor])
            rows.append(
                ConstraintAttribution(
                    kind="inequality",
                    label=f"{label}>=lower",
                    value=value,
                    binding=binding(value, row.lower / _SCALE),
                    dims=dims,
                )
            )
            cursor += 1
    for max_row in program.max_constraints:
        value = float(values[cursor])
        rows.append(
            ConstraintAttribution(
                kind="max",
                label=f"max-epigraph aux{max_row.aux}",
                value=value,
                binding=binding(value, float(x[num_dims + max_row.aux])),
                dims=(),
            )
        )
        cursor += 1
    for comm in program.comm_constraints:
        value = float(values[cursor])
        rows.append(
            ConstraintAttribution(
                kind="comm",
                label=f"comm aux{comm.aux} dim{comm.dim}",
                value=value,
                binding=binding(value, float(x[num_dims + comm.aux])),
                dims=(int(comm.dim),),
            )
        )
        cursor += 1
    assert cursor == blocks.num_rows
    return tuple(rows)


def wasteless_baseline(
    expression: Expr,
    bandwidths: Sequence[float],
    constraints: ConstraintSet | None = None,
) -> tuple[float, ...] | None:
    """Traffic-proportional allocation of the point's total budget, bytes/s.

    With a budget constraint the split is clipped into the designer box
    (the solver's water-filling seed); otherwise the point's own total is
    distributed along the traffic shares. ``None`` when the expression
    moves no traffic.
    """
    point = np.asarray(bandwidths, dtype=float)
    shares = traffic_totals(expression, point.size)
    if constraints is not None and constraints.total_bandwidth is not None:
        split = _proportional_split(shares, constraints)
        if split is not None:
            return tuple(float(v) for v in split)
    positive = np.maximum(shares, 0.0)
    if positive.sum() <= 0:
        return None
    split = float(point.sum()) * positive / positive.sum()
    return tuple(float(v) for v in split)


def bottleneck_structure(
    expression: Expr,
    bandwidths: Sequence[float],
    constraints: ConstraintSet | None = None,
    relative_step: float = 1e-4,
    binding_tolerance: float = 0.05,
) -> BottleneckStructure:
    """Compute the full bottleneck structure at one point.

    Args:
        expression: Combined training-time expression (e.g.
            ``Libra.combined_expression()``).
        bandwidths: The design point, bytes/s; all entries positive.
        constraints: The designer constraint set the point was solved
            under. Optional — without it, row attribution is empty and
            the wasteless baseline uses the point's own total.
        relative_step: Finite-difference step for the marginals.
        binding_tolerance: Relative tolerance of the marginal binding set.
    """
    point = np.asarray(bandwidths, dtype=float)
    backward = bandwidth_sensitivity(
        expression, point, relative_step, mode="backward"
    )
    forward = bandwidth_sensitivity(
        expression, point, relative_step, mode="forward"
    )
    marginals = backward.marginals
    transfer = tuple(
        tuple(float(mi - mj) for mj in marginals) for mi in marginals
    )

    attributions: tuple[ConstraintAttribution, ...] = ()
    if constraints is not None:
        if constraints.num_dims != point.size:
            raise ConfigurationError(
                f"constraint set covers {constraints.num_dims} dims, "
                f"point has {point.size}"
            )
        program = compile_expression(expression, point.size)
        scaled = point / _SCALE
        x = np.concatenate([scaled, program.initial_aux(scaled)])
        attributions = _attribute_rows(program, constraints, x)

    certificate = certify_optimum(expression, point)
    return BottleneckStructure(
        bandwidths=tuple(float(v) for v in point),
        step_time=backward.step_time,
        marginals=marginals,
        forward_marginals=forward.marginals,
        kink_gaps=tuple(
            float(f - b) for f, b in zip(forward.marginals, marginals)
        ),
        binding_dims=backward.binding_dims(binding_tolerance),
        transfer_matrix=transfer,
        attributions=attributions,
        wasteless=wasteless_baseline(expression, point, constraints),
        certificate=certificate.to_dict(),
    )

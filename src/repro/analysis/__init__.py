"""Bottleneck-structure analytics over solved design points.

A read-only analysis layer on top of :mod:`repro.core` (it never runs the
solver and never mutates solver state): given a design point, compute
*why* it looks the way it does — which constraint rows bind, how the
water-filling kinks distribute, how far the point sits from the wasteless
traffic-proportional baseline — and answer cheap what-if perturbations
through the memoized vector evaluator.

The package depends only on ``core``/``training``/``obs``/``utils``;
``api`` wires it to the request surface (``AnalyzeRequest``, schema v4)
and ``serve`` exposes it at ``GET /v3/analyze``.
"""

from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    build_report,
    format_report,
)
from repro.analysis.structure import (
    ROW_BINDING_RTOL,
    BottleneckStructure,
    ConstraintAttribution,
    bottleneck_structure,
    wasteless_baseline,
)
from repro.analysis.whatif import (
    WHATIF_OPS,
    WhatIfMemo,
    WhatIfQuery,
    WhatIfResult,
    default_queries,
    evaluate_whatifs,
)

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisReport",
    "BottleneckStructure",
    "ConstraintAttribution",
    "ROW_BINDING_RTOL",
    "WHATIF_OPS",
    "WhatIfMemo",
    "WhatIfQuery",
    "WhatIfResult",
    "bottleneck_structure",
    "build_report",
    "default_queries",
    "evaluate_whatifs",
    "format_report",
    "wasteless_baseline",
]

"""Full training-step simulation on the chunk-level network model.

This mirrors the analytical estimator of :mod:`repro.training.estimator`
but replaces every closed-form collective time with a chunk-pipelined
simulation (:func:`repro.simulator.pipeline.simulate_collective`), capturing
the pipeline fill/drain bubbles the closed form ignores. It also aggregates
per-dimension utilization across the whole step — the quantity Fig. 10
reports for the EqualBW baselines.

Loop semantics follow Fig. 5: under the no-overlap loop everything is
sequential; under TP-DP overlap, each layer's backward time is
``TP_Comp + max(TP_Comm, DP_Comp + DP_Comm)`` with the communication terms
taken from simulation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.collectives.types import CollectiveOp
from repro.simulator.pipeline import ChunkScheduler, CollectiveResult, simulate_collective
from repro.simulator.stats import UtilizationReport, merge_reports
from repro.topology.network import MultiDimNetwork
from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.estimator import resolve_comm
from repro.utils.errors import ConfigurationError
from repro.workloads.parallelism import map_parallelism
from repro.workloads.workload import Workload

#: Paper default: every collective is split into 64 chunks (Sec. V-B).
DEFAULT_NUM_CHUNKS: int = 64


@dataclass(frozen=True)
class StepSimulation:
    """Result of simulating one training step.

    Attributes:
        total_time: End-to-end step seconds.
        compute_time: Exposed (non-overlapped) compute seconds.
        comm_time: Exposed communication seconds.
        comm_report: Merged per-dimension utilization over all simulated
            communication phases.
        collective_times: Simulated seconds per resolved collective label.
    """

    total_time: float
    compute_time: float
    comm_time: float
    comm_report: UtilizationReport
    collective_times: dict[str, float]

    @property
    def comm_fraction(self) -> float:
        """Share of the step spent in exposed communication."""
        if self.total_time == 0:
            return 0.0
        return self.comm_time / self.total_time


def simulate_training_step(
    workload: Workload,
    network: MultiDimNetwork,
    bandwidths: tuple[float, ...] | list[float],
    compute_model: ComputeModel | None = None,
    loop_name: str = "no-overlap",
    num_chunks: int = DEFAULT_NUM_CHUNKS,
    scheduler_factory: Callable[[], ChunkScheduler] | None = None,
) -> StepSimulation:
    """Simulate one training step of ``workload`` at ``bandwidths``.

    Args:
        scheduler_factory: Optional per-collective chunk-scheduler factory
            (e.g. the Themis scheduler); canonical multi-rail when omitted.
    """
    if loop_name not in ("no-overlap", "tp-dp-overlap"):
        raise ConfigurationError(f"unknown loop {loop_name!r}")
    compute = compute_model or a100_compute_model()
    mapping = map_parallelism(network, workload.parallelism)
    bw = tuple(float(value) for value in bandwidths)

    collective_times: dict[str, float] = {}
    reports: list[UtilizationReport] = []

    def run_collectives(comms, label: str) -> float:
        """Simulate a phase's collectives back-to-back; returns total seconds."""
        total = 0.0
        for index, comm in enumerate(comms):
            op: CollectiveOp = resolve_comm(comm, mapping, f"{label}#{index}")
            if op.is_trivial:
                continue
            scheduler = scheduler_factory() if scheduler_factory else None
            result: CollectiveResult = simulate_collective(
                op, bw, num_chunks=num_chunks, scheduler=scheduler
            )
            if scheduler is not None:
                # A planning scheduler's projection ignores intra-chunk
                # serialization, so its plan can lose to the canonical
                # order. Honour the documented fallback contract — never
                # meaningfully slower — by keeping whichever simulates
                # faster.
                canonical = simulate_collective(op, bw, num_chunks=num_chunks)
                if canonical.finish_time < result.finish_time:
                    result = canonical
            collective_times[op.label] = result.finish_time
            reports.append(result.report)
            total += result.finish_time
        return total

    total_time = 0.0
    compute_time = 0.0
    comm_time = 0.0
    for layer in workload.layers:
        fwd_compute = compute.time_for(layer.fwd_compute_flops)
        tp_compute = compute.time_for(layer.tp_compute_flops)
        dp_compute = compute.time_for(layer.dp_compute_flops)
        fwd_comm = run_collectives(layer.fwd_comms, f"{layer.name}/fwd")
        tp_comm = run_collectives(layer.tp_comms, f"{layer.name}/tp")
        dp_comm = run_collectives(layer.dp_comms, f"{layer.name}/dp")

        total_time += fwd_compute + fwd_comm
        compute_time += fwd_compute
        comm_time += fwd_comm
        if loop_name == "no-overlap":
            total_time += tp_compute + tp_comm + dp_compute + dp_comm
            compute_time += tp_compute + dp_compute
            comm_time += tp_comm + dp_comm
        else:
            overlapped = max(tp_comm, dp_compute + dp_comm)
            total_time += tp_compute + overlapped
            compute_time += tp_compute
            if tp_comm >= dp_compute + dp_comm:
                comm_time += tp_comm
            else:
                compute_time += dp_compute
                comm_time += dp_comm

    if reports:
        comm_report = merge_reports(reports)
    else:
        from repro.simulator.stats import BusyTracker

        comm_report = BusyTracker(network.num_dims).report(0.0, bw)
    return StepSimulation(
        total_time=total_time,
        compute_time=compute_time,
        comm_time=comm_time,
        comm_report=comm_report,
        collective_times=collective_times,
    )


def ideal_comm_time(step: StepSimulation) -> float:
    """Communication time at 100% aggregate bandwidth utilization.

    Fig. 10's "achievable ideal": moving the same bytes while saturating the
    whole fabric. The theoretical speedup the paper quotes (e.g. 1.83× for
    3D EqualBW) is ``total_time / (compute_time + ideal_comm_time)``.
    """
    report = step.comm_report
    total_bandwidth = sum(report.bandwidths)
    if total_bandwidth == 0:
        return 0.0
    return sum(report.bytes_moved) / total_bandwidth


def utilization_speedup_potential(step: StepSimulation) -> float:
    """Speedup available from perfect bandwidth utilization (Fig. 10)."""
    ideal_total = step.compute_time + ideal_comm_time(step)
    if ideal_total == 0:
        return 1.0
    return step.total_time / ideal_total

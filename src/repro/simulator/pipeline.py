"""Chunk-level multi-rail collective simulation (Fig. 9).

Collectives are split into chunks (64 per collective in the paper's setup)
that pipeline through the network dimensions: while chunk *c* reduces on
Dim 2, chunk *c+1* reduces on Dim 1. Each dimension is modeled as a FIFO
bandwidth server from the perspective of one (representative) NPU — the
multi-rail algorithm is fully symmetric, so every NPU sees the same
schedule, exactly as Fig. 9 draws it.

The *order* in which a chunk visits dimensions is delegated to a
:class:`ChunkScheduler`. The baseline :class:`FixedOrderScheduler` follows
the canonical multi-rail order (RS ascending, AG descending); the
Themis-style scheduler in :mod:`repro.runtime.themis` plugs in here to pick
orders dynamically. For correctness, a chunk's All-Gather phase always
mirrors its own Reduce-Scatter order in reverse, whatever that order was.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field

from repro.collectives.types import CollectiveOp, CollectiveType, DimSpan
from repro.simulator.engine import EventQueue
from repro.simulator.stats import BusyTracker, UtilizationReport
from repro.utils.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class StageJob:
    """One (chunk, dimension) transfer queued at a dimension server."""

    chunk_id: int
    span: DimSpan
    phase: str  # "RS" / "AG" / "A2A"
    volume_bytes: float


class ChunkProgress:
    """Mutable per-chunk state machine for the multi-rail traversal."""

    def __init__(self, chunk_id: int, op: CollectiveOp, chunk_bytes: float):
        self.chunk_id = chunk_id
        self.op = op
        self.spans = op.spans
        self.kind = op.kind
        self.ag_pending: set[int] = set()
        if self.kind is CollectiveType.ALL_GATHER:
            # All-Gather starts from the scattered shard and grows back out;
            # the visit order is free (any order yields a complete gather),
            # so it uses a pending set like the RS phase.
            self.payload = chunk_bytes / op.group_size
            self.rs_pending: set[int] = set()
            self.ag_pending = set(range(len(self.spans)))
        else:
            self.payload = chunk_bytes
            self.rs_pending = set(range(len(self.spans)))
        self.rs_visit_order: list[int] = []
        self.ag_position = 0

    # -- phase bookkeeping ---------------------------------------------------

    @property
    def in_rs_phase(self) -> bool:
        # A2A reuses the pending set: one visit per span, order-flexible.
        return bool(self.rs_pending)

    @property
    def in_ag_phase(self) -> bool:
        if self.kind is CollectiveType.ALL_REDUCE:
            return not self.rs_pending and self.ag_position < len(self.spans)
        if self.kind is CollectiveType.ALL_GATHER:
            return bool(self.ag_pending)
        return False

    @property
    def finished(self) -> bool:
        return not self.in_rs_phase and not self.in_ag_phase

    def ag_order(self) -> list[int]:
        """AG span order for All-Reduce: the chunk's own RS order reversed.

        Mirroring is a correctness requirement of the multi-rail value flow —
        the scattered shard must be gathered back through the same groups it
        was reduced into, in reverse. Pure All-Gather collectives do not go
        through this method; their order is free (see ``ag_pending``).
        """
        return list(reversed(self.rs_visit_order))

    def stage_volume(self, span_index: int) -> float:
        """Bytes this chunk would move on ``span_index`` right now."""
        span = self.spans[span_index]
        if self.kind is CollectiveType.POINT_TO_POINT:
            return self.payload  # full payload hops through the dimension
        if self.in_rs_phase:
            return self.payload * (span.size - 1) / span.size
        payload_out = self.payload * span.size
        return payload_out * (span.size - 1) / span.size

    def advance(self, span_index: int) -> None:
        """Commit the transfer on ``span_index`` and update the payload."""
        span = self.spans[span_index]
        if self.in_rs_phase:
            if span_index not in self.rs_pending:
                raise SimulationError(
                    f"chunk {self.chunk_id} revisited span {span_index} in RS phase"
                )
            self.rs_pending.discard(span_index)
            self.rs_visit_order.append(span_index)
            if self.kind not in (
                CollectiveType.ALL_TO_ALL,
                CollectiveType.POINT_TO_POINT,
            ):
                self.payload /= span.size
        elif self.in_ag_phase:
            if self.kind is CollectiveType.ALL_GATHER:
                if span_index not in self.ag_pending:
                    raise SimulationError(
                        f"chunk {self.chunk_id} revisited span {span_index} in AG phase"
                    )
                self.ag_pending.discard(span_index)
            else:
                expected = self.ag_order()[self.ag_position]
                if span_index != expected:
                    raise SimulationError(
                        f"chunk {self.chunk_id} AG phase expected span {expected}, "
                        f"got {span_index}"
                    )
                self.ag_position += 1
            self.payload *= span.size
        else:
            raise SimulationError(f"chunk {self.chunk_id} advanced after finishing")


class ChunkScheduler(abc.ABC):
    """Chooses which span a ready chunk traverses next."""

    def prepare(
        self,
        op: CollectiveOp,
        num_chunks: int,
        servers: "list[DimServer]",
        bandwidths: tuple[float, ...],
    ) -> None:
        """Hook called once before dispatching; planners build state here."""

    @abc.abstractmethod
    def next_span(
        self,
        progress: ChunkProgress,
        now: float,
        servers: "list[DimServer]",
        bandwidths: tuple[float, ...],
    ) -> int:
        """Span index for the chunk's next stage. Only called when unfinished."""


class FixedOrderScheduler(ChunkScheduler):
    """Canonical multi-rail order: RS ascending spans, AG descending."""

    def next_span(
        self,
        progress: ChunkProgress,
        now: float,
        servers: "list[DimServer]",
        bandwidths: tuple[float, ...],
    ) -> int:
        if progress.in_rs_phase:
            return min(progress.rs_pending)
        if progress.ag_pending:
            return max(progress.ag_pending)
        return progress.ag_order()[progress.ag_position]


class DimServer:
    """FIFO bandwidth server for one network dimension."""

    def __init__(self, dim: int, bandwidth: float):
        if bandwidth <= 0:
            raise ConfigurationError(f"dimension {dim} bandwidth must be positive")
        self.dim = dim
        self.bandwidth = bandwidth
        self.queue: deque[StageJob] = deque()
        self.busy = False
        self.free_at = 0.0
        self.queued_volume = 0.0

    def estimated_completion(self, now: float, volume: float) -> float:
        """Finish time if ``volume`` were enqueued now (Themis' lookahead)."""
        start = max(self.free_at, now) if self.busy else now
        return start + (self.queued_volume + volume) / self.bandwidth

    def backlog_seconds(self, now: float) -> float:
        """Work already committed to this server, in seconds from ``now``."""
        in_service = max(self.free_at - now, 0.0) if self.busy else 0.0
        return in_service + self.queued_volume / self.bandwidth


@dataclass(frozen=True)
class TimelineEvent:
    """One transfer on one dimension server (a Fig. 9 box)."""

    dim: int
    chunk_id: int
    phase: str  # "RS" / "AG" / "A2A" / "P2P"
    start: float
    end: float


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective."""

    finish_time: float
    report: UtilizationReport
    chunk_finish_times: tuple[float, ...] = field(default=())
    timeline: tuple[TimelineEvent, ...] = field(default=())


def simulate_collective(
    op: CollectiveOp,
    bandwidths: tuple[float, ...] | list[float],
    num_chunks: int = 64,
    scheduler: ChunkScheduler | None = None,
) -> CollectiveResult:
    """Simulate one collective, chunked and pipelined, on dimension servers.

    Args:
        op: The collective (spans bound to physical dimensions).
        bandwidths: Per-NPU bandwidth per dimension, bytes/s.
        num_chunks: Pipeline depth (paper default: 64).
        scheduler: Stage-ordering policy; canonical multi-rail when omitted.

    Returns:
        Finish time, per-dimension utilization report, and per-chunk finish
        times (ascending — useful for pipelining diagnostics).
    """
    if num_chunks < 1:
        raise ConfigurationError(f"num_chunks must be >= 1, got {num_chunks}")
    num_dims = len(bandwidths)
    bw = tuple(float(b) for b in bandwidths)
    if op.is_trivial:
        empty = BusyTracker(num_dims).report(0.0, bw)
        return CollectiveResult(finish_time=0.0, report=empty, chunk_finish_times=())
    if op.spans and op.spans[-1].dim >= num_dims:
        raise ConfigurationError(
            f"collective spans dim {op.spans[-1].dim}, network has {num_dims}"
        )

    policy = scheduler or FixedOrderScheduler()
    queue = EventQueue()
    tracker = BusyTracker(num_dims)
    servers = [DimServer(dim, bw[dim]) for dim in range(num_dims)]
    chunk_bytes = op.size_bytes / num_chunks
    chunks = [ChunkProgress(index, op, chunk_bytes) for index in range(num_chunks)]
    finish_times: dict[int, float] = {}
    timeline: list[TimelineEvent] = []
    policy.prepare(op, num_chunks, servers, bw)

    def dispatch(chunk: ChunkProgress) -> None:
        """Route a ready chunk to its next dimension server (or retire it)."""
        if chunk.finished:
            finish_times[chunk.chunk_id] = queue.now
            return
        span_index = policy.next_span(chunk, queue.now, servers, bw)
        span = chunk.op.spans[span_index]
        volume = chunk.stage_volume(span_index)
        phase = "RS" if chunk.in_rs_phase else "AG"
        if chunk.kind is CollectiveType.ALL_TO_ALL:
            phase = "A2A"
        elif chunk.kind is CollectiveType.POINT_TO_POINT:
            phase = "P2P"
        chunk.advance(span_index)
        job = StageJob(chunk.chunk_id, span, phase, volume)
        enqueue(servers[span.dim], job)

    def enqueue(server: DimServer, job: StageJob) -> None:
        server.queue.append(job)
        server.queued_volume += job.volume_bytes
        if not server.busy:
            start_next(server)

    def start_next(server: DimServer) -> None:
        if not server.queue:
            server.busy = False
            return
        job = server.queue.popleft()
        server.queued_volume -= job.volume_bytes
        duration = job.volume_bytes / server.bandwidth
        server.busy = True
        server.free_at = queue.now + duration
        tracker.record(server.dim, duration, job.volume_bytes)
        timeline.append(
            TimelineEvent(
                dim=server.dim,
                chunk_id=job.chunk_id,
                phase=job.phase,
                start=queue.now,
                end=queue.now + duration,
            )
        )

        def complete() -> None:
            start_next(server)
            dispatch(chunks[job.chunk_id])

        queue.schedule_after(duration, complete)

    for chunk in chunks:
        dispatch(chunk)
    makespan = queue.run()

    if len(finish_times) != num_chunks:
        raise SimulationError(
            f"{num_chunks - len(finish_times)} chunks never finished"
        )
    ordered = tuple(finish_times[index] for index in range(num_chunks))
    return CollectiveResult(
        finish_time=makespan,
        report=tracker.report(makespan, bw),
        chunk_finish_times=ordered,
        timeline=tuple(timeline),
    )

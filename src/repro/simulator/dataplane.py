"""Value-level execution of multi-rail collectives (Fig. 8).

The timing simulator treats payloads as byte counts; this module executes
the *actual data movement* with numpy arrays so the multi-rail decomposition
can be verified end to end: after a multi-rail All-Reduce every NPU must
hold exactly the elementwise sum of all contributions, whatever the network
shape. Fig. 8's 3×2 walkthrough is reproduced verbatim in the test suite.

Groups are derived from NPU coordinates on the real network, so partial
spans (TP slices) are exercised too: a collective over spans covering a
slice of a dimension runs within each slice group independently.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.types import CollectiveOp, CollectiveType, DimSpan
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import SimulationError


def _span_groups(
    network: MultiDimNetwork, span: DimSpan, members: list[int]
) -> list[list[int]]:
    """Partition ``members`` into communication groups along ``span``.

    NPUs that share every coordinate except ``span.dim`` form one physical
    group; a partial span further splits that group into contiguous slices
    of ``span.size`` (slice *k* holds coordinates ``[k·size, (k+1)·size)``).
    """
    groups: dict[tuple, list[int]] = {}
    for npu in members:
        coords = network.coordinates_of(npu)
        slice_index = coords[span.dim] // span.size
        key = coords[: span.dim] + (slice_index,) + coords[span.dim + 1:]
        groups.setdefault(key, []).append(npu)
    for key, group in groups.items():
        if len(group) != span.size:
            raise SimulationError(
                f"span {span} produced a group of {len(group)} NPUs at {key}"
            )
        group.sort(key=lambda npu: network.coordinates_of(npu)[span.dim])
    return list(groups.values())


def _group_members(network: MultiDimNetwork, op: CollectiveOp) -> list[list[int]]:
    """All disjoint NPU groups executing ``op`` (usually one per TP/DP replica)."""
    groups: dict[tuple, list[int]] = {}
    span_info = {span.dim: span.size for span in op.spans}
    for npu in range(network.num_npus):
        coords = network.coordinates_of(npu)
        key = []
        for dim, coord in enumerate(coords):
            if dim in span_info:
                key.append(("slice", dim, coord // span_info[dim]))
            else:
                key.append(("fixed", dim, coord))
        groups.setdefault(tuple(key), []).append(npu)
    return list(groups.values())


def run_all_reduce(
    network: MultiDimNetwork,
    op: CollectiveOp,
    contributions: np.ndarray,
) -> np.ndarray:
    """Execute a multi-rail All-Reduce with real values.

    Args:
        network: The physical network.
        op: An All-Reduce op whose spans are bound to this network.
        contributions: Array of shape ``(num_npus, vector_len)``;
            ``vector_len`` must be divisible by the op's group size.

    Returns:
        Array of the same shape: each NPU's resulting vector. Within every
        participating group the result rows are identical and equal the
        group sum.
    """
    if op.kind is not CollectiveType.ALL_REDUCE:
        raise SimulationError(f"run_all_reduce got a {op.kind.value} op")
    if contributions.shape[0] != network.num_npus:
        raise SimulationError(
            f"expected {network.num_npus} contribution rows, got {contributions.shape[0]}"
        )
    vector_len = contributions.shape[1]
    if vector_len % op.group_size != 0:
        raise SimulationError(
            f"vector length {vector_len} not divisible by group size {op.group_size}"
        )

    values = contributions.astype(float).copy()
    for members in _group_members(network, op):
        _all_reduce_group(network, op, values, members, vector_len)
    return values


def _all_reduce_group(
    network: MultiDimNetwork,
    op: CollectiveOp,
    values: np.ndarray,
    members: list[int],
    vector_len: int,
) -> None:
    """In-place multi-rail All-Reduce within one disjoint group."""
    # Owned slice per NPU: (start, length) of the vector segment the NPU is
    # responsible for during the scatter-reduce half.
    owned = {npu: (0, vector_len) for npu in members}

    rs_order = list(range(len(op.spans)))
    for span_index in rs_order:
        span = op.spans[span_index]
        for group in _span_groups(network, span, members):
            _reduce_scatter_stage(values, owned, group, span.size)
    for span_index in reversed(rs_order):
        span = op.spans[span_index]
        for group in _span_groups(network, span, members):
            _all_gather_stage(values, owned, group, span.size)


def _reduce_scatter_stage(
    values: np.ndarray,
    owned: dict[int, tuple[int, int]],
    group: list[int],
    size: int,
) -> None:
    """One RS stage: each NPU keeps 1/size of its slice, reduced group-wide."""
    start, length = owned[group[0]]
    if any(owned[npu] != (start, length) for npu in group):
        raise SimulationError("group members disagree on the owned slice")
    part = length // size
    if part * size != length:
        raise SimulationError(f"slice of {length} not divisible by group size {size}")
    segment = values[group, start:start + length]
    reduced = segment.sum(axis=0)
    for position, npu in enumerate(group):
        sub_start = start + position * part
        values[npu, sub_start:sub_start + part] = reduced[
            position * part:(position + 1) * part
        ]
        owned[npu] = (sub_start, part)


def _all_gather_stage(
    values: np.ndarray,
    owned: dict[int, tuple[int, int]],
    group: list[int],
    size: int,
) -> None:
    """One AG stage: members exchange slices, growing ownership back out."""
    starts = [owned[npu][0] for npu in group]
    length = owned[group[0]][1]
    if any(owned[npu][1] != length for npu in group):
        raise SimulationError("group members disagree on slice length during AG")
    merged_start = min(starts)
    for npu in group:
        for peer, peer_start in zip(group, starts):
            if peer != npu:
                values[npu, peer_start:peer_start + length] = values[
                    peer, peer_start:peer_start + length
                ]
        owned[npu] = (merged_start, length * size)


def run_all_to_all(
    network: MultiDimNetwork,
    op: CollectiveOp,
    payloads: np.ndarray,
) -> np.ndarray:
    """Execute a multi-rail All-to-All with real values.

    Args:
        payloads: Array of shape ``(num_npus, num_npus)`` where
            ``payloads[i, j]`` is the value NPU *i* sends to NPU *j*
            (entries outside a group are ignored).

    Returns:
        Array where ``result[j, i] == payloads[i, j]`` for every (i, j) in
        the same group: the transpose restricted to groups, realized through
        dimension-by-dimension exchanges.
    """
    if op.kind is not CollectiveType.ALL_TO_ALL:
        raise SimulationError(f"run_all_to_all got a {op.kind.value} op")
    result = np.full_like(payloads, np.nan, dtype=float)
    for members in _group_members(network, op):
        # held[npu] maps destination -> (origin, value) items currently
        # buffered at npu while they hop dimension by dimension.
        held: dict[int, list[tuple[int, int, float]]] = {
            npu: [(dest, npu, float(payloads[npu, dest])) for dest in members]
            for npu in members
        }
        for span in op.spans:
            for group in _span_groups(network, span, members):
                _all_to_all_stage(network, held, group, span)
        for npu in members:
            for dest, origin, value in held[npu]:
                if dest != npu:
                    raise SimulationError(
                        f"A2A item for {dest} stranded at {npu} after all stages"
                    )
                result[npu, origin] = value
    return result


def _all_to_all_stage(
    network: MultiDimNetwork,
    held: dict[int, list[tuple[int, int, float]]],
    group: list[int],
    span: DimSpan,
) -> None:
    """Route items to the group member matching their destination coordinate."""
    incoming: dict[int, list[tuple[int, int, float]]] = {npu: [] for npu in group}
    position_of = {
        network.coordinates_of(npu)[span.dim]: npu for npu in group
    }
    for npu in group:
        for dest, origin, value in held[npu]:
            dest_coord = network.coordinates_of(dest)[span.dim]
            target = position_of.get(dest_coord)
            if target is None:
                raise SimulationError(
                    f"destination coordinate {dest_coord} missing from group"
                )
            incoming[target].append((dest, origin, value))
    for npu in group:
        held[npu] = incoming[npu]

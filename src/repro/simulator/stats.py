"""Per-dimension bandwidth utilization accounting (Fig. 9, Fig. 10).

The simulator records, for every network dimension, the intervals during
which the dimension was actively transferring. From those intervals this
module derives:

* **per-dimension utilization** — busy time over makespan (the idle gaps of
  Fig. 9 are exactly ``1 − utilization``);
* **aggregate bandwidth utilization** — bytes actually moved divided by the
  bytes the full network could have moved during the makespan. This is the
  quantity Fig. 10 sweeps (57.53% / 39.02% / 66.74% for EqualBW 2D/3D/4D on
  MSFT-1T), and its reciprocal bounds the achievable speedup.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.utils.errors import SimulationError


@dataclass
class BusyTracker:
    """Accumulates busy intervals per dimension during a simulation."""

    num_dims: int
    busy_seconds: list[float] = field(default_factory=list)
    bytes_moved: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.busy_seconds:
            self.busy_seconds = [0.0] * self.num_dims
        if not self.bytes_moved:
            self.bytes_moved = [0.0] * self.num_dims

    def record(self, dim: int, duration: float, volume_bytes: float) -> None:
        """Log one transfer of ``volume_bytes`` taking ``duration`` seconds."""
        if not 0 <= dim < self.num_dims:
            raise SimulationError(f"dimension {dim} out of range")
        if duration < 0 or volume_bytes < 0:
            raise SimulationError(
                f"negative duration/volume ({duration}, {volume_bytes})"
            )
        self.busy_seconds[dim] += duration
        self.bytes_moved[dim] += volume_bytes

    def report(self, makespan: float, bandwidths: Sequence[float]) -> "UtilizationReport":
        """Freeze the tracker into a report for a run of length ``makespan``."""
        if makespan < 0:
            raise SimulationError(f"makespan must be >= 0, got {makespan}")
        return UtilizationReport(
            makespan=makespan,
            bandwidths=tuple(float(b) for b in bandwidths),
            busy_seconds=tuple(self.busy_seconds),
            bytes_moved=tuple(self.bytes_moved),
        )


@dataclass(frozen=True)
class UtilizationReport:
    """Utilization summary of one simulated communication phase."""

    makespan: float
    bandwidths: tuple[float, ...]
    busy_seconds: tuple[float, ...]
    bytes_moved: tuple[float, ...]

    @property
    def num_dims(self) -> int:
        return len(self.bandwidths)

    def dim_utilization(self, dim: int) -> float:
        """Busy fraction of one dimension over the makespan."""
        if self.makespan == 0:
            return 0.0
        return min(self.busy_seconds[dim] / self.makespan, 1.0)

    @property
    def per_dim_utilization(self) -> tuple[float, ...]:
        return tuple(self.dim_utilization(dim) for dim in range(self.num_dims))

    @property
    def aggregate_utilization(self) -> float:
        """Bytes moved over bytes the whole fabric could have moved.

        ``Σ bytes_i / (makespan · Σ B_i)`` — Fig. 10's x-axis.
        """
        capacity = self.makespan * sum(self.bandwidths)
        if capacity == 0:
            return 0.0
        return min(sum(self.bytes_moved) / capacity, 1.0)

    @property
    def bottleneck_dim(self) -> int:
        """The dimension with the highest busy fraction."""
        return max(range(self.num_dims), key=self.dim_utilization)

    def merged_with(self, other: "UtilizationReport") -> "UtilizationReport":
        """Concatenate two phases run back-to-back on the same network."""
        if self.bandwidths != other.bandwidths:
            raise SimulationError("cannot merge reports with different bandwidths")
        return UtilizationReport(
            makespan=self.makespan + other.makespan,
            bandwidths=self.bandwidths,
            busy_seconds=tuple(
                a + b for a, b in zip(self.busy_seconds, other.busy_seconds)
            ),
            bytes_moved=tuple(
                a + b for a, b in zip(self.bytes_moved, other.bytes_moved)
            ),
        )


def merge_reports(reports: Sequence[UtilizationReport]) -> UtilizationReport:
    """Fold a sequence of phase reports into one aggregate report."""
    if not reports:
        raise SimulationError("cannot merge zero reports")
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merged_with(report)
    return merged

"""Chunk-level network simulator — the ASTRA-sim analogue (Sec. V-A).

Public surface:

* :class:`EventQueue` — deterministic discrete-event core.
* :func:`simulate_collective` / :class:`FixedOrderScheduler` /
  :class:`ChunkScheduler` — pipelined multi-rail collective execution on
  per-dimension bandwidth servers (Fig. 9).
* :func:`simulate_training_step` — full training-step simulation with
  overlap semantics and utilization accounting (Fig. 10).
* :func:`run_all_reduce` / :func:`run_all_to_all` — value-level data-plane
  execution for correctness verification (Fig. 8).
* :class:`UtilizationReport` / :class:`BusyTracker` — per-dimension
  bandwidth utilization accounting.
"""

from repro.simulator.dataplane import run_all_reduce, run_all_to_all
from repro.simulator.engine import EventQueue
from repro.simulator.pipeline import (
    ChunkProgress,
    ChunkScheduler,
    CollectiveResult,
    DimServer,
    FixedOrderScheduler,
    StageJob,
    simulate_collective,
)
from repro.simulator.pipeline import TimelineEvent
from repro.simulator.stats import BusyTracker, UtilizationReport, merge_reports
from repro.simulator.timeline import busy_fraction, render_timeline, timeline_gaps
from repro.simulator.training_sim import (
    DEFAULT_NUM_CHUNKS,
    StepSimulation,
    ideal_comm_time,
    simulate_training_step,
    utilization_speedup_potential,
)

__all__ = [
    "run_all_reduce",
    "run_all_to_all",
    "EventQueue",
    "ChunkProgress",
    "ChunkScheduler",
    "CollectiveResult",
    "DimServer",
    "FixedOrderScheduler",
    "StageJob",
    "simulate_collective",
    "TimelineEvent",
    "busy_fraction",
    "render_timeline",
    "timeline_gaps",
    "BusyTracker",
    "UtilizationReport",
    "merge_reports",
    "DEFAULT_NUM_CHUNKS",
    "StepSimulation",
    "ideal_comm_time",
    "simulate_training_step",
    "utilization_speedup_potential",
]

"""ASCII rendering of collective timelines — Fig. 9, drawn from simulation.

The paper's Fig. 9 shades, per dimension, which chunk occupies the rail at
each instant and where the idle gaps sit. :func:`render_timeline` produces
the same picture in text from the simulator's recorded
:class:`~repro.simulator.pipeline.TimelineEvent` stream::

    Dim1 |00112233--------|
    Dim2 |--0--1--2--3----|
    Dim3 |---0---1---2---3|

Digits are chunk ids (mod 10, lowercase letters for the RS half and digits
for AG when ``phase_markers`` is on), ``-`` is idle. Rendering is resolution
-limited, not exact: each column covers ``makespan / width`` seconds and
shows the event that covers the column's midpoint.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.simulator.pipeline import TimelineEvent
from repro.utils.errors import ConfigurationError

_IDLE = "-"


def render_timeline(
    events: Sequence[TimelineEvent],
    num_dims: int,
    width: int = 64,
    phase_markers: bool = False,
) -> str:
    """Render a per-dimension occupancy chart from timeline events.

    Args:
        events: The simulator's recorded transfers.
        num_dims: Number of dimension rows to draw.
        width: Characters per row.
        phase_markers: When True, Reduce-Scatter cells render as lowercase
            letters (a–j for chunks 0–9 mod 10) and All-Gather cells as
            digits, making the two phases visually distinct.

    Returns:
        One line per dimension, ``Dim<k> |cells|``.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if num_dims < 1:
        raise ConfigurationError(f"num_dims must be >= 1, got {num_dims}")
    makespan = max((event.end for event in events), default=0.0)
    rows = []
    for dim in range(num_dims):
        cells = [_IDLE] * width
        dim_events = [event for event in events if event.dim == dim]
        if makespan > 0:
            for column in range(width):
                instant = (column + 0.5) * makespan / width
                for event in dim_events:
                    if event.start <= instant < event.end:
                        cells[column] = _marker(event, phase_markers)
                        break
        rows.append(f"Dim{dim + 1} |{''.join(cells)}|")
    return "\n".join(rows)


def _marker(event: TimelineEvent, phase_markers: bool) -> str:
    digit = event.chunk_id % 10
    if phase_markers and event.phase == "RS":
        return "abcdefghij"[digit]
    return str(digit)


def timeline_gaps(
    events: Sequence[TimelineEvent],
    dim: int,
    horizon: float | None = None,
) -> list[tuple[float, float]]:
    """Idle intervals of one dimension, ``[(start, end), …]``.

    ``horizon`` defaults to the overall makespan; trailing idle time up to
    the horizon counts as a gap (those are Fig. 9's underutilization bands).
    """
    dim_events = sorted(
        (event for event in events if event.dim == dim),
        key=lambda event: event.start,
    )
    end_of_time = horizon if horizon is not None else max(
        (event.end for event in events), default=0.0
    )
    gaps = []
    cursor = 0.0
    for event in dim_events:
        if event.start > cursor + 1e-15:
            gaps.append((cursor, event.start))
        cursor = max(cursor, event.end)
    if cursor + 1e-15 < end_of_time:
        gaps.append((cursor, end_of_time))
    return gaps


def busy_fraction(
    events: Sequence[TimelineEvent],
    dim: int,
    horizon: float | None = None,
) -> float:
    """Busy share of one dimension over the horizon (1 − idle)."""
    end_of_time = horizon if horizon is not None else max(
        (event.end for event in events), default=0.0
    )
    if end_of_time == 0:
        return 0.0
    idle = sum(end - start for start, end in timeline_gaps(events, dim, end_of_time))
    return max(0.0, 1.0 - idle / end_of_time)

"""Minimal discrete-event simulation core.

A deliberately small engine: a monotonic clock plus a priority queue of
``(time, sequence, callback)`` events. The sequence number makes event
ordering deterministic under ties, which keeps every simulation in this
library exactly reproducible — a property the regression tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro.utils.errors import SimulationError


class EventQueue:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute ``time``."""
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, callback)

    def run(self, max_events: int = 10_000_000) -> float:
        """Drain the queue; returns the final simulation time.

        ``max_events`` bounds runaway simulations (a scheduling bug would
        otherwise loop forever); hitting it raises :class:`SimulationError`.
        """
        count = 0
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            callback()
            count += 1
            self._processed += 1
            if count > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a scheduling loop")
        return self._now

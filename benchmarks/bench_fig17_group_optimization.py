"""Fig. 17 — optimizing one network for a group of workloads.

Panel (a): the three LLMs; panel (b): MSFT-1T + DLRM + ResNet-50. For every
single-target network the paper reports cross-workload slowdowns of up to
1.77×, while the group-optimized network averages only 1.01× slowdown.
Setup: 4D-4K at 1,000 GB/s per NPU, PerfOptBW.
"""

import pytest

from _common import print_header, print_table
from repro.core import run_group_study
from repro.topology import get_topology
from repro.utils import gbps
from repro.workloads import build_workload

PANELS = {
    "(a) LLMs": ("Turing-NLG", "GPT-3", "MSFT-1T"),
    "(b) mixture": ("MSFT-1T", "DLRM", "ResNet-50"),
}


def run_panel(names):
    network = get_topology("4D-4K")
    workloads = [build_workload(name, 4096) for name in names]
    return run_group_study(network, workloads, total_bandwidth=gbps(1000))


def test_fig17_group_optimization(benchmark):
    for label, names in PANELS.items():
        study = run_panel(names)
        print_header(f"Fig. 17 {label} — speedup over EqualBW / slowdown vs own optimum")
        designs = list(names) + ["group"]
        rows = []
        for design in designs:
            for workload in names:
                rows.append(
                    (
                        design,
                        workload,
                        study.speedups[design][workload],
                        study.slowdowns[design][workload],
                    )
                )
        print_table(["network optimized for", "workload", "speedup", "slowdown"], rows)
        print(
            f"group network: avg slowdown {study.average_group_slowdown:.3f}x, "
            f"worst single-target cross slowdown {study.worst_cross_slowdown:.2f}x"
        )
        print("paper reference: group avg 1.01x; worst cross slowdown up to 1.77x")

        # Shape: single-target networks can hurt other workloads noticeably;
        # the group network stays close to optimal for everyone. (Our
        # water-filled single-target allocations are more extreme than the
        # paper's, so both the worst cross-slowdown and the group average
        # land above the paper's 1.77x / 1.01x — see EXPERIMENTS.md.)
        assert study.worst_cross_slowdown > 1.05
        assert study.average_group_slowdown < 1.3
        assert max(study.slowdowns["group"].values()) <= study.worst_cross_slowdown

    benchmark.pedantic(
        lambda: run_panel(PANELS["(a) LLMs"]), rounds=1, iterations=1
    )

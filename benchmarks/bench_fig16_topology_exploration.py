"""Fig. 16 — MSFT-1T across 3D-512, 3D-1K, and 4D-2K topologies.

LIBRA supports arbitrary shapes and scales; this bench reruns the Fig. 13/14
analysis for the three smaller Table III networks, normalized to each
network's own EqualBW baseline.
"""

import pytest

from _common import BW_SWEEP_GBPS, optimize_workload, print_header, print_table, sweep_panel
from repro.core import Scheme

TOPOLOGIES = ("3D-512", "3D-1K", "4D-2K")


def run_panel(topology: str):
    sweep = sweep_panel(
        "MSFT-1T", topology, (Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT)
    )
    rows = []
    for bw in BW_SWEEP_GBPS:
        perf = sweep.get(total_bw_gbps=bw, scheme=Scheme.PERF_OPT)
        ppc = sweep.get(total_bw_gbps=bw, scheme=Scheme.PERF_PER_COST_OPT)
        rows.append(
            (
                bw,
                perf.speedup_over_equal,
                ppc.speedup_over_equal,
                perf.ppc_gain_over_equal,
                ppc.ppc_gain_over_equal,
            )
        )
    return rows


def test_fig16_topology_exploration(benchmark):
    for topology in TOPOLOGIES:
        rows = run_panel(topology)
        print_header(f"Fig. 16 — MSFT-1T on {topology}")
        print_table(
            [
                "BW (GB/s)",
                "PerfOpt speedup",
                "PerfPerCost speedup",
                "PerfOpt ppc",
                "PerfPerCost ppc",
            ],
            rows,
        )
        best_speedup = max(row[1] for row in rows)
        best_ppc = max(row[4] for row in rows)
        # Every topology shows gains from workload-aware allocation.
        assert best_speedup > 1.05
        assert best_ppc > 1.2
        for _, perf_speedup, _, perf_ppc, ppc_ppc in rows:
            assert perf_speedup >= 1.0 - 1e-6
            assert ppc_ppc >= perf_ppc * 0.999

    benchmark.pedantic(
        lambda: optimize_workload("MSFT-1T", "4D-2K", 500, Scheme.PERF_OPT),
        rounds=3,
        iterations=1,
    )

"""Fig. 18 — cost-model sensitivity: sweeping the inter-Package link price.

The cost model is user-supplied; the paper demonstrates the flexibility by
sweeping the inter-Package link cost from $1 to $5/GBps on the 4D-4K network
(1,000 GB/s per NPU, PerfPerCostOptBW, GPT-3 as the target workload) and
reports a 4.06× average (5.59× max) perf-per-cost benefit over EqualBW.
"""

import statistics

import pytest

from _common import print_header, print_table
from repro.core import Libra, Scheme
from repro.cost import default_cost_model
from repro.topology import NetworkTier, get_topology
from repro.utils import gbps
from repro.workloads import build_workload

LINK_COSTS = (1.0, 2.0, 3.0, 4.0, 5.0)


def run_point(link_cost: float):
    cost_model = default_cost_model().with_link_cost(NetworkTier.PACKAGE, link_cost)
    libra = Libra(get_topology("4D-4K"), cost_model=cost_model)
    libra.add_workload(build_workload("GPT-3", 4096))
    constraints = libra.constraints().with_total_bandwidth(gbps(1000))
    optimized = libra.optimize(Scheme.PERF_PER_COST_OPT, constraints)
    baseline = libra.equal_bw_point(gbps(1000))
    return optimized.perf_per_cost_gain_over(baseline), optimized


def test_fig18_cost_sensitivity(benchmark):
    print_header("Fig. 18 — PerfPerCostOptBW vs inter-Package link cost (4D-4K)")
    gains = []
    rows = []
    for link_cost in LINK_COSTS:
        gain, point = run_point(link_cost)
        gains.append(gain)
        rows.append(
            (
                f"${link_cost:.0f}/GBps",
                gain,
                ", ".join(f"{bw:.0f}" for bw in point.bandwidths_gbps()),
            )
        )
    print_table(["inter-Package link", "ppc gain over EqualBW", "BW split (GB/s)"], rows)
    print(
        f"measured: mean {statistics.mean(gains):.2f}x, max {max(gains):.2f}x; "
        "paper reference: mean 4.06x, max 5.59x"
    )

    # Shape: a healthy gain at every price point, and the optimizer reacts
    # to the price knob (the optimal splits are not all identical).
    assert min(gains) > 1.5
    splits = {row[2] for row in rows}
    assert len(splits) > 1

    benchmark.pedantic(lambda: run_point(3.0), rounds=3, iterations=1)

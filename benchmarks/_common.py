"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once, prints the same rows/series the paper reports (so the
output can be compared side by side with the publication), asserts the
qualitative *shape* (who wins, rough factors, crossovers), and hands a
representative kernel to pytest-benchmark for timing.

Absolute numbers are not expected to match the authors' ASTRA-sim testbed;
EXPERIMENTS.md records paper-vs-measured for every experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.api import OptimizeRequest, build_scenario, get_service
from repro.core import Scheme
from repro.core.results import DesignPoint
from repro.explore import ResultCache, SweepResult, SweepSpec, run_sweep
from repro.topology import MultiDimNetwork

#: The Fig. 13/14 sweep range: 100–1,000 GB/s per NPU (Sec. VI-A).
BW_SWEEP_GBPS: tuple[int, ...] = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)

#: Session-wide in-memory exploration cache. Figs. 13 and 14 sweep the
#: identical grid (they report different metrics of the same design points),
#: so whichever benchmark runs second gets its panels as pure cache hits.
EXPLORE_CACHE = ResultCache()


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Fixed-width table printer for benchmark reports."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    print(line)
    print("  ".join("-" * width for width in widths))
    for row in materialized:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def optimize_workload(
    workload_name: str,
    topology_name: str,
    total_bw_gbps: float,
    scheme: Scheme,
) -> tuple[DesignPoint, DesignPoint]:
    """(optimized point, EqualBW baseline) for one sweep cell.

    Stated as a request against the Scenario/Service API; the per-process
    service memoizes the compiled engine, so benchmarks revisiting one
    workload × topology pair share its expression tree.
    """
    scenario = build_scenario(
        topology=topology_name,
        workloads=[workload_name],
        total_bw_gbps=total_bw_gbps,
    )
    response = get_service().submit(
        OptimizeRequest(scenario=scenario, scheme=scheme)
    )
    assert response.baseline is not None
    return response.point, response.baseline


def sweep_panel(
    workload_name: str,
    topology_name: str,
    schemes: Sequence[Scheme],
    bw_points: Sequence[int] = BW_SWEEP_GBPS,
) -> SweepResult:
    """One figure panel as an exploration sweep, served via the shared cache.

    Every cell must solve — a panel with a failed design point would print a
    silently incomplete figure, so errors surface immediately.
    """
    spec = SweepSpec(
        workloads=(workload_name,),
        topologies=(topology_name,),
        bandwidths_gbps=tuple(float(bw) for bw in bw_points),
        schemes=tuple(schemes),
    )
    sweep = run_sweep(spec, cache=EXPLORE_CACHE)
    failed = [result for result in sweep.results if not result.ok]
    assert not failed, f"panel cell failed: {failed[0].point.label()}: {failed[0].error}"
    return sweep


def sweep_speedups(
    workload_name: str,
    topology_name: str,
    scheme: Scheme,
    bw_points: Sequence[int] = BW_SWEEP_GBPS,
) -> list[tuple[int, float, float]]:
    """Rows of (BW GB/s, speedup over EqualBW, perf-per-cost over EqualBW)."""
    sweep = sweep_panel(workload_name, topology_name, (scheme,), bw_points)
    return [
        (bw, result.speedup_over_equal, result.ppc_gain_over_equal)
        for bw, result in zip(bw_points, sweep.results)
    ]


def merged_2d_topology() -> MultiDimNetwork:
    """The 2D companion of 4D-4K: all scale-up dims merged (Fig. 10)."""
    return MultiDimNetwork.from_notation("RI(128)_SW(32)", name="2D-4K")

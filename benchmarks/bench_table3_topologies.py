"""Table III + Fig. 11 — the topology zoo and real-system notation.

Regenerates the Table III list used throughout the evaluation and the
Fig. 11 real-system examples, verifying shapes and NPU counts.
"""

from _common import print_header, print_table
from repro.topology import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    get_topology,
    parse_notation,
)

EXPECTED_NPUS = {
    "4D-4K": 4096,
    "3D-4K": 4096,
    "3D-512": 512,
    "3D-1K": 1024,
    "4D-2K": 2048,
    "3D-Torus": 64,
}


def test_table3_topologies(benchmark):
    print_header("Table III — multi-dimensional topologies used for analysis")
    rows = []
    for name, notation in EVALUATION_TOPOLOGIES.items():
        network = get_topology(name)
        rows.append(
            (
                name,
                notation,
                network.num_dims,
                network.num_npus,
                "/".join(tier.value for tier in network.tiers),
            )
        )
        assert network.num_npus == EXPECTED_NPUS[name]
        assert network.notation == notation
    print_table(["name", "shape", "dims", "NPUs", "tiers"], rows)

    print_header("Fig. 11 — real systems captured by the notation")
    rows = []
    for system, notation in REAL_SYSTEM_TOPOLOGIES.items():
        network = get_topology(system)
        rows.append((system, notation, network.num_dims, network.num_npus))
    print_table(["system", "shape", "dims", "NPUs"], rows)

    benchmark(lambda: parse_notation("RI(4)_FC(8)_RI(4)_SW(32)"))

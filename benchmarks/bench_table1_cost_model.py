"""Table I + Fig. 12 — the network cost model and its worked example.

Regenerates the Table I price grid and the Fig. 12 cost walkthrough
(3 NPUs behind one inter-Pod switch at 10 GB/s → $1,722) and verifies the
line items exactly.
"""

import pytest

from _common import print_header, print_table
from repro.cost import cost_breakdown, default_cost_model, network_cost
from repro.topology import MultiDimNetwork, NetworkTier, switch
from repro.utils import gbps


def fig12_network() -> MultiDimNetwork:
    return MultiDimNetwork(blocks=(switch(3),), tiers=(NetworkTier.POD,))


def test_table1_cost_model(benchmark):
    model = default_cost_model()

    print_header("Table I — cost model ($/GBps, lowest value per entry)")
    rows = []
    for tier in NetworkTier:
        price = model.tier_cost(tier)
        rows.append(
            (
                f"inter-{tier.value.capitalize()}",
                price.link,
                price.switch if price.switch is not None else "-",
                price.nic if price.nic is not None else "-",
            )
        )
    print_table(["tier", "link", "switch", "NIC"], rows)

    print_header("Fig. 12 — worked example: 3-NPU inter-Pod switch @ 10 GB/s")
    network = fig12_network()
    (entry,) = cost_breakdown(network, [gbps(10)], model)
    print_table(
        ["component", "dollars"],
        [
            ("links (3 × $7.8 × 10)", entry.link),
            ("switch ($18 × 3 × 10)", entry.switch),
            ("NICs (3 × $31.6 × 10)", entry.nic),
            ("total", entry.total),
        ],
    )

    assert entry.link == pytest.approx(234.0)
    assert entry.switch == pytest.approx(540.0)
    assert entry.nic == pytest.approx(948.0)
    assert entry.total == pytest.approx(1722.0)

    benchmark(lambda: network_cost(fig12_network(), [gbps(10)], model))

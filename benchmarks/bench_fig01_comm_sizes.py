"""Fig. 1 — communication sizes for model training across 1,024 NPUs.

The paper plots the total communication volume per training step (FP16) for
models from ResNet-50 up to MSFT-1T, spanning from tens of MB to the TB
range. This bench regenerates the series from the workload models and
asserts the ordering and the orders-of-magnitude spread.

Batch accounting: Fig. 1 uses a minibatch of 32 per model replica (the
paper's DP setting), so the TP-parallel LLMs are built here with
``microbatch = 32`` as well — one training step processes the full
minibatch, and TP activation all-reduces scale with it.
"""

from dataclasses import replace

from _common import print_header, print_table
from repro.utils import bytes_to_mb
from repro.workloads import (
    GPT3_CONFIG,
    MSFT_1T_CONFIG,
    TP_SIZES,
    Parallelism,
    build_transformer,
    build_workload,
)

#: Plot order follows the paper's timeline (small → large models).
SERIES = ("ResNet-50", "DLRM", "Turing-NLG", "GPT-3", "MSFT-1T")

_FIG1_CONFIGS = {
    "GPT-3": replace(GPT3_CONFIG, microbatch=32),
    "MSFT-1T": replace(MSFT_1T_CONFIG, microbatch=32),
}


def comm_size_mb(name: str) -> float:
    num_npus = 1024
    config = _FIG1_CONFIGS.get(name)
    if config is None:
        workload = build_workload(name, num_npus)
    else:
        tp = TP_SIZES[name]
        workload = build_transformer(config, Parallelism(tp, num_npus // tp))
    return bytes_to_mb(workload.total_comm_bytes)


def test_fig01_comm_sizes(benchmark):
    print_header("Fig. 1 — total communication per training step @ 1,024 NPUs (FP16)")
    sizes = {name: comm_size_mb(name) for name in SERIES}
    print_table(
        ["workload", "comm size (MB)"],
        [(name, f"{sizes[name]:,.1f}") for name in SERIES],
    )

    # Shape: monotone growth from vision/recommendation to trillion-parameter
    # LLMs, spanning several orders of magnitude (the paper shows ~10 MB at
    # the low end and ~1 TB at the top).
    ordered = [sizes[name] for name in SERIES]
    assert ordered == sorted(ordered)
    assert sizes["MSFT-1T"] / sizes["ResNet-50"] > 1e3
    assert sizes["MSFT-1T"] > 1e5  # approaching the TB regime
    assert sizes["GPT-3"] > 1e4  # tens of GB and up

    benchmark(lambda: comm_size_mb("GPT-3"))

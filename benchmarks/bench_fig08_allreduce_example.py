"""Fig. 8 — multi-rail All-Reduce on a 3×2 network, executed with values.

The paper walks one All-Reduce through its four stages (RS on Dim 1, RS on
Dim 2, AG on Dim 2, AG on Dim 1) with concrete numbers; this bench executes
the same data plane and verifies every NPU ends with the column sums, plus
the per-dimension traffic the walkthrough implies (Dim 2 moves 1/4 of
Dim 1's volume).
"""

import numpy as np
import pytest

from _common import print_header, print_table
from repro.collectives import DimSpan, all_reduce, per_dim_traffic
from repro.simulator import run_all_reduce
from repro.topology import MultiDimNetwork


def build_case():
    net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
    contributions = np.array(
        [
            [1, 2, 3, -6, -4, -2],
            [4, 5, 6, -5, -3, -1],
            [1, 3, 5, -2, -3, -5],
            [2, 4, 6, -1, -4, -6],
            [6, 3, 2, 4, 2, 6],
            [5, 4, 1, 1, 5, 3],
        ],
        dtype=float,
    )
    op = all_reduce(float(contributions.shape[1]), (DimSpan(0, 3), DimSpan(1, 2)))
    return net, op, contributions


def test_fig08_allreduce_example(benchmark):
    net, op, contributions = build_case()
    result = run_all_reduce(net, op, contributions)
    expected = contributions.sum(axis=0)

    print_header("Fig. 8 — 3×2 multi-rail All-Reduce, value-level execution")
    print_table(
        ["NPU", "result vector"],
        [(npu + 1, np.array2string(result[npu], precision=0)) for npu in range(6)],
    )
    print(f"expected global sum: {np.array2string(expected, precision=0)}")

    for npu in range(6):
        np.testing.assert_allclose(result[npu], expected)

    traffic = per_dim_traffic(op)
    print_table(
        ["dimension", "traffic per NPU (payload fraction)"],
        [
            ("Dim 1", traffic[0] / op.size_bytes),
            ("Dim 2", traffic[1] / op.size_bytes),
        ],
    )
    # Sec. III-C: after the Dim 1 reduction, Dim 2 carries 1/4 of Dim 1's load
    # on this 3×2 shape: (2·5/6) vs (2·1/6) per unit payload.
    assert traffic[1] / traffic[0] == pytest.approx(1 / 4, abs=0.01)

    benchmark(lambda: run_all_reduce(net, op, contributions))

"""Solver hot-path microbenchmark: vectorized kernel vs closure path.

Times one end-to-end ``PerfOptBW`` and ``PerfPerCostOptBW`` solve at
GPT-3 scale (GPT-3 on 4D-4K, 4,096 NPUs, 500 GB/s budget by default)
through both solver kernels, verifies they return the same design points,
and writes a ``BENCH_solver.json`` artifact. The PerfPerCost row is the
headline number: the vectorized kernel's target is ≥ 3× over the
pre-vectorization closure path.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_solver_hotpath.py
    PYTHONPATH=src python benchmarks/perf/bench_solver_hotpath.py --group
    PYTHONPATH=src python benchmarks/perf/bench_solver_hotpath.py \
        --min-speedup 3.0

Exit status: 1 on solver-equivalence drift or an unmet ``--min-speedup``
floor, 0 otherwise. (``repro bench`` is the packaged equivalent; this
script exists so the perf trajectory can be measured without installing.)
"""

from __future__ import annotations

import argparse
import sys

from repro.perfbench.harness import (
    BenchConfig,
    BenchEquivalenceError,
    format_report,
    run_benchmarks,
    write_artifact,
)
from repro.workloads.presets import workload_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", action="append", default=[],
                        help="workload(s); repeat for a group (default GPT-3)")
    parser.add_argument("--topology", default="4D-4K")
    parser.add_argument("--total-bw", type=float, default=500.0,
                        help="budget in GB/s (default 500)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repetitions (default 5)")
    parser.add_argument("--group", action="store_true",
                        help="benchmark the full Table-II group objective "
                             "(hundreds of epigraph constraints)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail if the PerfPerCost cold speedup is below "
                             "this (default 0 = report only)")
    parser.add_argument("--output", default="BENCH_solver.json")
    args = parser.parse_args(argv)

    workloads = tuple(args.workload) or (
        tuple(workload_names()) if args.group else ("GPT-3",)
    )
    config = BenchConfig(
        workloads=workloads,
        topology=args.topology,
        total_bw_gbps=args.total_bw,
        repeats=args.repeats,
        label="group" if args.group else "hotpath",
    )
    try:
        artifact = run_benchmarks(config)
    except BenchEquivalenceError as exc:
        print(f"EQUIVALENCE DRIFT: {exc}", file=sys.stderr)
        return 1
    print(format_report(artifact))
    write_artifact(args.output, artifact)
    print(f"wrote {args.output}")

    if args.min_speedup > 0:
        ppc = next(
            bench for bench in artifact["benchmarks"]
            if bench["name"] == "solver_perf_per_cost"
        )
        if ppc["speedup_cold"] < args.min_speedup:
            print(
                f"FAIL: PerfPerCost speedup {ppc['speedup_cold']:.2f}x "
                f"< floor {args.min_speedup:g}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

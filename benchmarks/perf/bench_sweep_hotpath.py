"""Sweep hot-path benchmark: continuation (warm-start) vs cold grids.

Times a fig13-style budget sweep (GPT-3 on 4D-4K across seven budgets,
both schemes, by default) through the real explore engine twice — once
with every cell solved from cold seeds, once with the default continuation
chains — verifies the two paths agree per cell within the documented
objective tolerance, and writes a ``BENCH_sweep.json`` artifact (wall
clock, cells/sec, warm-start hit breakdown).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_sweep_hotpath.py
    PYTHONPATH=src python benchmarks/perf/bench_sweep_hotpath.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_sweep_hotpath.py \
        --min-speedup 2.0

Exit status: 1 on warm-vs-cold equivalence drift or an unmet
``--min-speedup`` floor, 0 otherwise. (``repro bench --sweep`` is the
packaged equivalent; this script exists so the perf trajectory can be
measured without installing.)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.perfbench.harness import BenchEquivalenceError
from repro.perfbench.sweep import (
    SweepBenchConfig,
    format_sweep_report,
    quick_sweep_config,
    run_sweep_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", action="append", default=[],
                        help="workload axis entry (repeatable; default GPT-3)")
    parser.add_argument("--topology", default="4D-4K")
    parser.add_argument("--bw", action="append", type=float, default=[],
                        metavar="GBPS",
                        help="budget axis entry in GB/s (repeatable; "
                             "default 100..1000, 7 points)")
    parser.add_argument("--scheme", action="append", default=[],
                        help="scheme axis entry (repeatable; default "
                             "perf + perf-per-cost)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repetitions per path (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke configuration "
                             "(Turing-NLG on 3D-512)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail if the warm/cold speedup is below this "
                             "(default 0 = report only)")
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    if args.quick:
        config = quick_sweep_config()
    else:
        defaults = SweepBenchConfig()
        config = SweepBenchConfig(
            workloads=tuple(args.workload) or defaults.workloads,
            topology=args.topology,
            budgets_gbps=tuple(args.bw) or defaults.budgets_gbps,
            schemes=tuple(args.scheme) or defaults.schemes,
            repeats=args.repeats,
            label="hotpath",
        )
    try:
        artifact = run_sweep_benchmark(config)
    except BenchEquivalenceError as exc:
        print(f"EQUIVALENCE DRIFT: {exc}", file=sys.stderr)
        return 1
    print(format_sweep_report(artifact))
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup > 0 and artifact["speedup"] < args.min_speedup:
        print(
            f"FAIL: sweep speedup {artifact['speedup']:.2f}x "
            f"< floor {args.min_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

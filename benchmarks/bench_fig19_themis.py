"""Fig. 19 — LIBRA + Themis: design-time allocation under runtime scheduling.

The paper trains GPT-3 on the 4D-4K topology with the Themis collective
scheduler enabled on both an EqualBW and a LIBRA-designed network, under two
regimes:

* **iso-cost** — both networks cost $15M. The LIBRA shape concentrates
  bandwidth on cheap inner dimensions, affording 5.05× more aggregate
  bandwidth, and even with Themis helping EqualBW it trains 2.24× faster.
* **iso-resource** — both networks have 1,000 GB/s per NPU. LIBRA's network
  is 1.04× faster and 4.58× cheaper → 4.77× better perf-per-cost.
"""

import pytest

from _common import print_header, print_table
from repro.core import Libra, Scheme
from repro.cost import max_bandwidth_for_budget, network_cost, default_cost_model
from repro.runtime import ThemisScheduler
from repro.simulator import simulate_training_step
from repro.topology import get_topology
from repro.utils import gbps
from repro.workloads import build_workload

ISO_COST_DOLLARS = 15e6
ISO_RESOURCE_GBPS = 1000


def libra_shares():
    """The PerfPerCost-optimal allocation *shape* for GPT-3 on 4D-4K."""
    libra = Libra(get_topology("4D-4K"))
    libra.add_workload(build_workload("GPT-3", 4096))
    constraints = libra.constraints().with_total_bandwidth(gbps(ISO_RESOURCE_GBPS))
    point = libra.optimize(Scheme.PERF_PER_COST_OPT, constraints)
    total = point.total_bandwidth
    return [bw / total for bw in point.bandwidths]


def step_time_with_themis(bandwidths):
    workload = build_workload("GPT-3", 4096)
    network = get_topology("4D-4K")
    step = simulate_training_step(
        workload, network, bandwidths, num_chunks=8, scheduler_factory=ThemisScheduler
    )
    return step.total_time


def test_fig19_themis(benchmark):
    network = get_topology("4D-4K")
    model = default_cost_model()
    shares = libra_shares()
    equal_shares = [0.25] * 4

    # --- iso-cost: both designs priced at $15M --------------------------------
    equal_total = max_bandwidth_for_budget(network, equal_shares, ISO_COST_DOLLARS, model)
    libra_total = max_bandwidth_for_budget(network, shares, ISO_COST_DOLLARS, model)
    equal_bw = [equal_total * share for share in equal_shares]
    libra_bw = [libra_total * share for share in shares]
    equal_time = step_time_with_themis(equal_bw)
    libra_time = step_time_with_themis(libra_bw)
    bw_ratio = libra_total / equal_total
    iso_cost_speedup = equal_time / libra_time

    print_header("Fig. 19 — iso-cost ($15M), Themis enabled on both networks")
    print_table(
        ["design", "total BW (GB/s)", "step time (ms)", "cost ($M)"],
        [
            ("EqualBW", equal_total / 1e9, equal_time * 1e3,
             network_cost(network, equal_bw, model) / 1e6),
            ("LIBRA", libra_total / 1e9, libra_time * 1e3,
             network_cost(network, libra_bw, model) / 1e6),
        ],
    )
    print(f"LIBRA affords {bw_ratio:.2f}x more BW and trains {iso_cost_speedup:.2f}x faster")
    print("paper reference: 5.05x more BW, 2.24x faster")

    # --- iso-resource: both designs at 1,000 GB/s per NPU ---------------------
    equal_bw = [gbps(ISO_RESOURCE_GBPS) * share for share in equal_shares]
    libra_bw = [gbps(ISO_RESOURCE_GBPS) * share for share in shares]
    equal_time = step_time_with_themis(equal_bw)
    libra_time = step_time_with_themis(libra_bw)
    equal_cost = network_cost(network, equal_bw, model)
    libra_cost = network_cost(network, libra_bw, model)
    iso_resource_speedup = equal_time / libra_time
    cost_reduction = equal_cost / libra_cost
    ppc_gain = (equal_time * equal_cost) / (libra_time * libra_cost)

    print_header("Fig. 19 — iso-resource (1,000 GB/s), Themis enabled on both")
    print_table(
        ["design", "step time (ms)", "cost ($M)"],
        [
            ("EqualBW", equal_time * 1e3, equal_cost / 1e6),
            ("LIBRA", libra_time * 1e3, libra_cost / 1e6),
        ],
    )
    print(
        f"LIBRA: {iso_resource_speedup:.2f}x faster, {cost_reduction:.2f}x cheaper, "
        f"{ppc_gain:.2f}x better perf-per-cost"
    )
    print("paper reference: 1.04x faster, 4.58x cheaper, 4.77x better perf-per-cost")

    # Shape: at iso-cost LIBRA's cheap-dimension shape affords much more
    # bandwidth and wins outright even with Themis helping EqualBW; at
    # iso-resource the win is decisively on cost/perf-per-cost. (Our Themis
    # planner rescues the EqualBW network more aggressively than the paper's,
    # so the iso-resource *speed* comparison lands below the paper's 1.04x —
    # see EXPERIMENTS.md.)
    assert bw_ratio > 1.5
    assert iso_cost_speedup > 1.1
    assert cost_reduction > 2.0
    assert ppc_gain > 1.5

    benchmark.pedantic(
        lambda: step_time_with_themis(libra_bw), rounds=1, iterations=1
    )

"""Ablation — solver paths (DESIGN.md §5.1).

PerfOptBW is convex after epigraph reformulation, so three independent
routes must agree:

1. the closed-form water-filling solution (exact for a single collective
   under a pure budget);
2. the epigraph-compiled SLSQP solver;
3. brute-force simplex grid search over allocations.

This bench cross-checks them on single- and multi-collective instances and
times the production path.
"""

import itertools

import numpy as np
import pytest

from _common import print_header, print_table
from repro.core import ConstraintSet, minimize_training_time
from repro.training.expr import CommTerm, Sum
from repro.utils import gbps


def single_collective_instance():
    return CommTerm(((0, gbps(300)), (1, gbps(120)), (2, gbps(30))))


def multi_collective_instance():
    return Sum(
        (
            CommTerm(((0, gbps(500)), (1, gbps(50)))),
            CommTerm(((1, gbps(90)), (2, gbps(40)))),
            CommTerm(((0, gbps(60)), (2, gbps(60)))),
        )
    )


def grid_search(expr, total: float, resolution: int = 40) -> float:
    """Brute-force best objective over the 3-simplex at ``resolution`` steps."""
    best = float("inf")
    for i, j in itertools.product(range(1, resolution), repeat=2):
        k = resolution - i - j
        if k < 1:
            continue
        bandwidths = [total * i / resolution, total * j / resolution, total * k / resolution]
        best = min(best, expr.evaluate(bandwidths))
    return best


def test_ablation_solver(benchmark):
    total = gbps(450)
    rows = []

    # --- path 1 vs 2: water-filling is the solver's answer on one collective.
    expr = single_collective_instance()
    constraints = ConstraintSet(3).with_total_bandwidth(total)
    solved = minimize_training_time(expr, constraints)
    traffic = np.array([coeff for _, coeff in expr.coefficients])
    waterfilled = total * traffic / traffic.sum()
    analytic_objective = expr.evaluate(waterfilled)
    rows.append(
        ("single collective", "water-filling", analytic_objective)
    )
    rows.append(("single collective", "epigraph SLSQP", solved.objective))
    assert solved.objective == pytest.approx(analytic_objective, rel=1e-4)
    np.testing.assert_allclose(solved.bandwidths, waterfilled, rtol=1e-3)

    # --- path 2 vs 3: grid search cannot beat the solver.
    expr = multi_collective_instance()
    constraints = ConstraintSet(3).with_total_bandwidth(total)
    solved = minimize_training_time(expr, constraints)
    gridded = grid_search(expr, total)
    rows.append(("three collectives", "epigraph SLSQP", solved.objective))
    rows.append(("three collectives", "grid search (40 steps)", gridded))
    assert solved.objective <= gridded * 1.001

    print_header("Ablation — solver path agreement (objective seconds)")
    print_table(["instance", "method", "objective"], rows)

    benchmark(lambda: minimize_training_time(
        multi_collective_instance(),
        ConstraintSet(3).with_total_bandwidth(total),
    ))

"""Ablation — in-network collective offload (Sec. IV-C "In-network Collective").

The paper folds switch-offloaded reductions (SHArP-style) into its model:
offloading dimension *i* cuts its traffic to ``m / (n_1 ⋯ n_{i−1})``. Per
that formula the win applies to *fused All-Reduces* (it halves their
dimension traffic); ZeRO-2's Reduce-Scatter/All-Gather pairs already move
the offloaded volume, so this study uses classic data parallelism (one
gradient All-Reduce per layer). The bench measures how offloading the
scale-out switch changes both training time and the optimizer's allocation
— offload shrinks Pod-dimension demand, freeing bandwidth for inner dims.
"""

import pytest

from _common import print_header, print_table
from repro.core import Libra, Scheme
from repro.topology import get_topology
from repro.utils import gbps
from repro.workloads import TURING_NLG_CONFIG, Parallelism, build_transformer


def run_cell(in_network: bool):
    network = get_topology("4D-4K")
    dims = (3,) if in_network else ()
    libra = Libra(network, in_network_dims=dims)
    workload = build_transformer(
        TURING_NLG_CONFIG, Parallelism(1, 4096), zero2=False
    )
    libra.add_workload(workload)
    constraints = libra.constraints().with_total_bandwidth(gbps(500))
    optimized = libra.optimize(Scheme.PERF_OPT, constraints)
    baseline = libra.equal_bw_point(gbps(500))
    return optimized, baseline


def test_ablation_innetwork(benchmark):
    plain, plain_base = run_cell(in_network=False)
    offload, offload_base = run_cell(in_network=True)

    print_header(
        "Ablation — in-network reduction on the Pod switch "
        "(Turing-NLG, 4D-4K @ 500 GB/s)"
    )
    print_table(
        ["configuration", "optimized step", "EqualBW step", "optimal split (GB/s)"],
        [
            (
                "NPU-driven collectives",
                f"{plain.step_time('Turing-NLG') * 1e3:.2f} ms",
                f"{plain_base.step_time('Turing-NLG') * 1e3:.2f} ms",
                ", ".join(f"{b:.0f}" for b in plain.bandwidths_gbps()),
            ),
            (
                "switch offload on dim 4",
                f"{offload.step_time('Turing-NLG') * 1e3:.2f} ms",
                f"{offload_base.step_time('Turing-NLG') * 1e3:.2f} ms",
                ", ".join(f"{b:.0f}" for b in offload.bandwidths_gbps()),
            ),
        ],
    )
    gain = plain.step_time("Turing-NLG") / offload.step_time("Turing-NLG")
    pod_shift = plain.bandwidths_gbps()[3] / offload.bandwidths_gbps()[3]
    print(f"offload speedup at the optimized points: {gain:.3f}x; "
          f"Pod-dimension bandwidth shrinks {pod_shift:.2f}x")

    # Offload can only help, and the optimizer reallocates away from the
    # now-cheaper-to-serve Pod dimension.
    assert gain >= 1.0 - 1e-9
    assert offload.bandwidths_gbps()[3] < plain.bandwidths_gbps()[3]

    benchmark.pedantic(lambda: run_cell(True), rounds=3, iterations=1)

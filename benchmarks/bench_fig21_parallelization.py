"""Fig. 21 — co-optimizing the network and the parallelization strategy.

MSFT-1T on 4D-4K at 1,000 GB/s per NPU, sweeping HP-(8, 512) … HP-(256, 16)
(NPU memory capacity relaxed, as the paper assumes CXL-extended memory).
Each strategy gets its own PerfOptBW network; everything is normalized to
the EqualBW network running the paper's default HP-(128, 32).

Batch accounting: the sweep holds the *global* minibatch fixed (512
sequences), so the per-replica microbatch is ``512 / dp``. This is what
creates the paper's trade-off — TP activation all-reduces grow with the
per-replica batch (∝ tp) while ZeRO-2 gradient synchronization shrinks
(∝ 1/tp) — and with it the interior sweet spot (the paper finds HP-(64, 64)
best at 1.19× and sharp degradation once TP drops below 32).
"""

from dataclasses import replace

import pytest

from _common import print_header, print_table
from repro.core import Libra, Scheme
from repro.topology import get_topology
from repro.utils import gbps
from repro.workloads import MSFT_1T_CONFIG, Parallelism, build_transformer

TP_SWEEP = (8, 16, 32, 64, 128, 256)
TOTAL_GBPS = 1000
GLOBAL_BATCH = 512
NUM_NPUS = 4096
BASELINE_TP = 128


def build_msft(tp: int):
    dp = NUM_NPUS // tp
    config = replace(MSFT_1T_CONFIG, microbatch=max(GLOBAL_BATCH // dp, 1))
    return build_transformer(config, Parallelism(tp, dp))


def run_sweep():
    network = get_topology("4D-4K")

    baseline_libra = Libra(network)
    baseline_libra.add_workload(build_msft(BASELINE_TP))
    baseline = baseline_libra.equal_bw_point(gbps(TOTAL_GBPS))
    baseline_time = baseline.step_time("MSFT-1T")

    rows = []
    for tp in TP_SWEEP:
        workload = build_msft(tp)
        libra = Libra(network)
        libra.add_workload(workload)
        constraints = libra.constraints().with_total_bandwidth(gbps(TOTAL_GBPS))
        point = libra.optimize(Scheme.PERF_OPT, constraints)
        speedup = baseline_time / point.step_time("MSFT-1T")
        comm_bytes = workload.total_comm_bytes
        rows.append(
            (str(workload.parallelism), speedup, comm_bytes, point.bandwidths_gbps())
        )
    return rows


def test_fig21_parallelization(benchmark):
    rows = run_sweep()
    print_header(
        "Fig. 21 — MSFT-1T parallelization co-design on 4D-4K @ 1,000 GB/s "
        "(global batch 512, normalized to EqualBW + HP-(128, 32))"
    )
    print_table(
        ["strategy", "speedup", "comm/step (GB)", "PerfOptBW split (GB/s)"],
        [
            (
                name,
                speedup,
                f"{comm / 1e9:,.0f}",
                ", ".join(f"{bw:.0f}" for bw in split),
            )
            for name, speedup, comm, split in rows
        ],
    )

    speedups = {name: speedup for name, speedup, _, _ in rows}
    comm_sizes = {name: comm for name, _, comm, _ in rows}
    best = max(speedups, key=speedups.get)
    min_comm = min(comm_sizes, key=comm_sizes.get)
    print(f"best strategy: {best} at {speedups[best]:.2f}x "
          "(paper: HP-(64, 64) at 1.19x)")
    print(f"communication-minimizing strategy: {min_comm} "
          "(paper: HP-(32, 128))")

    # Shape assertions.
    # The sweet spot is interior: both extremes lose to it.
    assert best not in ("HP-(8, 512)", "HP-(256, 16)")
    assert speedups["HP-(8, 512)"] < speedups[best]
    assert speedups["HP-(256, 16)"] < speedups[best]
    # Co-design beats the baseline strategy + EqualBW network.
    assert speedups[best] > 1.0
    # Total communication is U-shaped with an interior minimum.
    assert min_comm not in ("HP-(8, 512)", "HP-(256, 16)")

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

"""Fig. 13 — end-to-end training speedup over EqualBW, BW sweep 100–1,000 GB/s.

Six panels: {Turing-NLG, GPT-3, MSFT-1T} × {3D-4K, 4D-4K}, each sweeping the
per-NPU bandwidth budget and plotting the speedup of PerfOptBW and
PerfPerCostOptBW networks over the EqualBW baseline. Paper headline:
PerfOptBW averages 1.23× (max 2.00×); PerfPerCostOptBW may dip below 1×
(it trades speed for cost).
"""

import statistics

import pytest

from _common import BW_SWEEP_GBPS, optimize_workload, print_header, print_table, sweep_panel
from repro.core import Scheme

PANELS = [
    (workload, topology)
    for workload in ("Turing-NLG", "GPT-3", "MSFT-1T")
    for topology in ("3D-4K", "4D-4K")
]


def run_panel(workload: str, topology: str) -> list[tuple[int, float, float]]:
    """Rows of (BW, PerfOpt speedup, PerfPerCostOpt speedup)."""
    sweep = sweep_panel(
        workload, topology, (Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT)
    )
    return [
        (
            bw,
            sweep.get(total_bw_gbps=bw, scheme=Scheme.PERF_OPT).speedup_over_equal,
            sweep.get(
                total_bw_gbps=bw, scheme=Scheme.PERF_PER_COST_OPT
            ).speedup_over_equal,
        )
        for bw in BW_SWEEP_GBPS
    ]


def test_fig13_speedup_sweep(benchmark):
    all_perf_speedups = []
    for workload, topology in PANELS:
        rows = run_panel(workload, topology)
        print_header(f"Fig. 13 — {workload} + {topology}: speedup over EqualBW")
        print_table(["BW (GB/s)", "PerfOptBW", "PerfPerCostOptBW"], rows)
        for _, perf_speedup, _ in rows:
            all_perf_speedups.append(perf_speedup)
            # PerfOpt never loses to EqualBW (same constraint set).
            assert perf_speedup >= 1.0 - 1e-6

    mean_speedup = statistics.mean(all_perf_speedups)
    max_speedup = max(all_perf_speedups)
    print_header("Fig. 13 summary")
    print(f"PerfOptBW speedup: mean {mean_speedup:.2f}x, max {max_speedup:.2f}x")
    print("paper reference:   mean 1.23x, max 2.00x")

    # Shape: meaningful average gain and a pronounced best case.
    assert mean_speedup > 1.05
    assert max_speedup > 1.3

    benchmark.pedantic(
        lambda: optimize_workload("GPT-3", "4D-4K", 500, Scheme.PERF_OPT),
        rounds=3,
        iterations=1,
    )

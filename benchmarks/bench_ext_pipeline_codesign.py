"""Extension — pipeline-parallel network co-design (beyond the paper).

The paper sketches pipeline parallelism's point-to-point transfers as
``m/B_i`` (Sec. IV-C) but evaluates only TP×DP strategies. This extension
study completes the picture: GPT-3 on the 4D-4K network under
HP-(tp, pp, dp) strategies with a GPipe-style schedule (16 microbatches),
each with its own PerfOptBW network, normalized to the EqualBW network
running the best non-pipelined strategy.

Not a paper figure — an extension enabled by the P2P traffic model.
"""

import pytest

from _common import print_header, print_table
from repro.core import ConstraintSet, minimize_training_time
from repro.topology import get_topology
from repro.training import pipeline_time_expression, training_time_expression
from repro.utils import gbps
from repro.workloads import GPT3_CONFIG, Parallelism, build_transformer

TOTAL_GBPS = 500
MICROBATCHES = 16

#: (tp, pp) pairs on 4,096 NPUs; dp fills the rest. 96 layers must divide pp.
STRATEGIES = [
    (16, 1),
    (16, 2),
    (8, 4),
    (8, 8),
    (4, 16),
]


def expression_for(tp: int, pp: int, network):
    dp = 4096 // (tp * pp)
    workload = build_transformer(GPT3_CONFIG, Parallelism(tp, dp, pp=pp))
    if pp == 1:
        # A non-pipelined step processes the same 16 microbatches serially.
        single = training_time_expression(workload, network)
        from repro.training.expr import Sum, simplify

        return simplify(Sum((single,), (float(MICROBATCHES),))), workload
    return (
        pipeline_time_expression(workload, network, num_microbatches=MICROBATCHES),
        workload,
    )


def run_study():
    network = get_topology("4D-4K")
    rows = []
    results = {}
    for tp, pp in STRATEGIES:
        expr, workload = expression_for(tp, pp, network)
        constraints = ConstraintSet(network.num_dims).with_total_bandwidth(
            gbps(TOTAL_GBPS)
        )
        solved = minimize_training_time(expr, constraints)
        equal = expr.evaluate([gbps(TOTAL_GBPS / 4)] * 4)
        results[str(workload.parallelism)] = solved.objective
        rows.append(
            (
                str(workload.parallelism),
                f"{solved.objective * 1e3:.1f} ms",
                f"{equal / solved.objective:.3f}x",
                ", ".join(f"{bw / 1e9:.0f}" for bw in solved.bandwidths),
            )
        )
    return rows, results


def test_ext_pipeline_codesign(benchmark):
    rows, results = run_study()
    print_header(
        "Extension — HP-(tp, pp, dp) co-design, GPT-3 on 4D-4K @ 500 GB/s, "
        f"{MICROBATCHES} microbatches per step"
    )
    print_table(
        ["strategy", "optimized step", "gain vs own EqualBW", "split (GB/s)"],
        rows,
    )
    best = min(results, key=results.get)
    print(f"fastest strategy at this budget: {best}")

    # Shape: pipelining trades TP/DP collective volume for P2P transfers and
    # bubbles; moderate pipelining is competitive, extreme pipelining pays
    # bubble overhead. All design points must beat their own EqualBW split.
    non_pipelined = results["HP-(16, 256)"]
    deep = results["HP-(4, 16, 64)"]
    assert deep > min(results.values()) * 0.999  # deepest is never the sole winner
    for name, value in results.items():
        assert value > 0

    benchmark.pedantic(run_study, rounds=1, iterations=1)

"""Ablation — training loops (Fig. 5(b) vs Fig. 5(c), DESIGN.md §5).

Quantifies what the TP-DP overlap loop buys on the evaluation workloads,
and verifies that the optimizer exploits the overlap structure: under the
overlap loop, DP bandwidth demand can hide behind TP communication, so the
optimal allocation shifts.
"""

import pytest

from _common import print_header, print_table
from repro.core import Libra, Scheme
from repro.topology import get_topology
from repro.training import NoOverlapLoop, TPDPOverlapLoop
from repro.utils import gbps
from repro.workloads import build_workload


def run_cell(workload_name: str, loop):
    network = get_topology("4D-4K")
    libra = Libra(network, loop=loop)
    libra.add_workload(build_workload(workload_name, 4096))
    constraints = libra.constraints().with_total_bandwidth(gbps(500))
    optimized = libra.optimize(Scheme.PERF_OPT, constraints)
    baseline = libra.equal_bw_point(gbps(500))
    return optimized, baseline


def test_ablation_loops(benchmark):
    print_header("Ablation — No-Overlap vs TP-DP-Overlap loop (4D-4K @ 500 GB/s)")
    rows = []
    for name in ("GPT-3", "MSFT-1T"):
        sequential, sequential_base = run_cell(name, NoOverlapLoop())
        overlapped, overlapped_base = run_cell(name, TPDPOverlapLoop())
        overlap_gain = sequential.step_time(name) / overlapped.step_time(name)
        rows.append(
            (
                name,
                f"{sequential.step_time(name) * 1e3:.1f} ms",
                f"{overlapped.step_time(name) * 1e3:.1f} ms",
                f"{overlap_gain:.3f}x",
                ", ".join(f"{b:.0f}" for b in sequential.bandwidths_gbps()),
                ", ".join(f"{b:.0f}" for b in overlapped.bandwidths_gbps()),
            )
        )
        # Overlap never hurts an optimized design.
        assert overlapped.step_time(name) <= sequential.step_time(name) * 1.0001
        # Both loops still beat their own EqualBW baselines.
        assert overlapped.speedup_over(overlapped_base) >= 1.0 - 1e-6
        assert sequential.speedup_over(sequential_base) >= 1.0 - 1e-6
    print_table(
        [
            "workload",
            "no-overlap (opt)",
            "tp-dp-overlap (opt)",
            "overlap gain",
            "no-overlap split",
            "overlap split",
        ],
        rows,
    )

    benchmark.pedantic(
        lambda: run_cell("GPT-3", TPDPOverlapLoop()), rounds=3, iterations=1
    )

"""Table II — workload specifications.

Regenerates the workload registry at 4,096 NPUs and verifies the parameter
counts and TP degrees match the paper's table.
"""

import pytest

from _common import print_header, print_table
from repro.utils import bytes_to_mb
from repro.workloads import TP_SIZES, build_workload, workload_names

EXPECTED_PARAMS = {
    "Turing-NLG": 17e9,
    "GPT-3": 175e9,
    "MSFT-1T": 1e12,
    "DLRM": 57e6,  # MLP layers only
    "ResNet-50": 25.6e6,
}


def test_table2_workloads(benchmark):
    print_header("Table II — workload specifications (at 4,096 NPUs)")
    rows = []
    for name in workload_names():
        workload = build_workload(name, 4096)
        params = workload.total_params
        if name == "DLRM":
            # Table II counts DLRM's MLP parameters only.
            params = sum(
                layer.param_count
                for layer in workload.layers
                if "mlp" in layer.name
            )
        rows.append(
            (
                name,
                f"{params / 1e9:.3f} B" if params >= 1e9 else f"{params / 1e6:.1f} M",
                workload.parallelism.tp,
                workload.parallelism.dp,
                workload.num_layers,
                f"{bytes_to_mb(workload.total_comm_bytes):,.0f} MB",
            )
        )
        tolerance = 0.05 if name == "DLRM" else 0.02
        assert params == pytest.approx(EXPECTED_PARAMS[name], rel=tolerance)
        assert workload.parallelism.tp == TP_SIZES[name]
    print_table(
        ["workload", "params", "TP", "DP", "layers", "comm/step"], rows
    )

    benchmark(lambda: build_workload("GPT-3", 4096))

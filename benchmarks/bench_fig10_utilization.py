"""Fig. 10 — MSFT-1T on EqualBW 2D/3D/4D networks @ 300 GB/s per NPU.

The paper measures the average network bandwidth utilization of the EqualBW
baselines (57.53% for 2D, 39.02% for 3D, 66.74% for 4D) and the speedup
available at 100% utilization (1.39× / 1.83× / 1.29×). This bench runs the
same experiment on the chunk-level simulator: utilization is bytes moved
over fabric capacity during communication phases, and the achievable-ideal
speedup compares against compute + perfectly-utilized communication.
"""

import pytest

from _common import merged_2d_topology, print_header, print_table
from repro.simulator import simulate_training_step, utilization_speedup_potential
from repro.topology import get_topology
from repro.utils import gbps
from repro.workloads import build_workload

TOTAL_BW_GBPS = 300


def run_cell(network):
    workload = build_workload("MSFT-1T", network.num_npus)
    per_dim = gbps(TOTAL_BW_GBPS) / network.num_dims
    step = simulate_training_step(
        workload, network, [per_dim] * network.num_dims, num_chunks=16
    )
    return step


def test_fig10_utilization(benchmark):
    networks = {
        "2D": merged_2d_topology(),
        "3D": get_topology("3D-4K"),
        "4D": get_topology("4D-4K"),
    }
    print_header(
        "Fig. 10 — MSFT-1T, EqualBW @ 300 GB/s per NPU: utilization & headroom"
    )
    rows = []
    results = {}
    for label, network in networks.items():
        step = run_cell(network)
        util = step.comm_report.aggregate_utilization
        speedup = utilization_speedup_potential(step)
        results[label] = (util, speedup)
        rows.append(
            (
                label,
                network.notation,
                f"{step.total_time * 1e3:.1f} ms",
                f"{util * 100:.2f}%",
                f"{speedup:.2f}x",
            )
        )
    print_table(
        ["dims", "shape", "step time", "avg BW utilization", "ideal speedup"], rows
    )
    print(
        "paper reference: 2D 57.53% (1.39x), 3D 39.02% (1.83x), 4D 66.74% (1.29x)"
    )

    # Shape assertions: every EqualBW configuration leaves significant
    # bandwidth idle, and lower utilization implies more headroom.
    for util, speedup in results.values():
        assert util < 0.9
        assert speedup > 1.0
    ordered = sorted(results.values(), key=lambda pair: pair[0])
    speedups = [speedup for _, speedup in ordered]
    assert speedups == sorted(speedups, reverse=True)

    benchmark.pedantic(
        lambda: run_cell(networks["4D"]), rounds=2, iterations=1
    )

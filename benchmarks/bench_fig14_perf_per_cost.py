"""Fig. 14 — perf-per-cost benefit over EqualBW, BW sweep 100–1,000 GB/s.

Same six panels as Fig. 13, measuring perf-per-cost (1 / (time × dollars))
relative to the EqualBW baseline. Paper headline: PerfOptBW averages 5.40×
(max 12.24×); PerfPerCostOptBW averages 9.16× (max 13.02×) and wins every
design point.
"""

import statistics

import pytest

from _common import BW_SWEEP_GBPS, optimize_workload, print_header, print_table, sweep_panel
from repro.core import Scheme

PANELS = [
    (workload, topology)
    for workload in ("Turing-NLG", "GPT-3", "MSFT-1T")
    for topology in ("3D-4K", "4D-4K")
]


def run_panel(workload: str, topology: str) -> list[tuple[int, float, float]]:
    sweep = sweep_panel(
        workload, topology, (Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT)
    )
    return [
        (
            bw,
            sweep.get(total_bw_gbps=bw, scheme=Scheme.PERF_OPT).ppc_gain_over_equal,
            sweep.get(
                total_bw_gbps=bw, scheme=Scheme.PERF_PER_COST_OPT
            ).ppc_gain_over_equal,
        )
        for bw in BW_SWEEP_GBPS
    ]


def test_fig14_perf_per_cost(benchmark):
    perf_gains = []
    ppc_gains = []
    for workload, topology in PANELS:
        rows = run_panel(workload, topology)
        print_header(f"Fig. 14 — {workload} + {topology}: perf-per-cost over EqualBW")
        print_table(["BW (GB/s)", "PerfOptBW", "PerfPerCostOptBW"], rows)
        for _, perf_gain, ppc_gain in rows:
            perf_gains.append(perf_gain)
            ppc_gains.append(ppc_gain)
            # PerfPerCostOptBW wins its own metric at every design point.
            assert ppc_gain >= perf_gain * 0.999
            assert ppc_gain >= 1.0 - 1e-6

    print_header("Fig. 14 summary")
    print(
        f"perf-per-cost gain: PerfOpt mean {statistics.mean(perf_gains):.2f}x "
        f"(max {max(perf_gains):.2f}x), "
        f"PerfPerCostOpt mean {statistics.mean(ppc_gains):.2f}x "
        f"(max {max(ppc_gains):.2f}x)"
    )
    print("paper reference:    PerfOpt mean 5.40x (max 12.24x), "
          "PerfPerCostOpt mean 9.16x (max 13.02x)")

    assert statistics.mean(ppc_gains) > 2.0
    assert max(ppc_gains) > 4.0

    benchmark.pedantic(
        lambda: optimize_workload("GPT-3", "4D-4K", 500, Scheme.PERF_PER_COST_OPT),
        rounds=3,
        iterations=1,
    )

"""Fig. 20 — LIBRA + TACOS: co-designing bandwidth with synthesized collectives.

A 1 GB All-Reduce with 8 chunks on the 3D-Torus at 1,000 GB/s per NPU, four
ways:

* **EqualBW + TACOS** — the synthesizer on the evenly-split torus.
* **LIBRA-only** — the staged multi-rail algorithm on LIBRA's
  (water-filled) multi-rail-optimal allocation.
* **LIBRA + TACOS** — the synthesizer with the allocation co-optimized in
  the loop (the multi-rail traffic model does not describe synthesized
  execution, so LIBRA searches its allocation family against the
  synthesizer directly).

Paper reference: LIBRA+TACOS is 1.25× faster than LIBRA-only, 1.08× faster
than TACOS-only, and 1.36× better perf-per-cost than TACOS-only.
"""

import pytest

from _common import print_header, print_table
from repro.collectives import DimSpan, all_reduce, ideal_bandwidth_split
from repro.cost import default_cost_model, network_cost
from repro.runtime import (
    cooptimize_with_tacos,
    multirail_all_reduce_time,
    synthesize_all_gather,
)
from repro.topology import get_topology
from repro.utils import gb, gbps

TOTAL_GBPS = 1000
PAYLOAD = gb(1)
CHUNKS = 8


def run_experiment():
    torus = get_topology("3D-Torus")
    model = default_cost_model()
    results = {}

    equal_bw = [gbps(TOTAL_GBPS / 3)] * 3
    tacos_equal = synthesize_all_gather(torus, equal_bw, PAYLOAD, CHUNKS)
    results["EqualBW+TACOS"] = (
        tacos_equal.all_reduce_time,
        network_cost(torus, equal_bw, model),
    )

    op = all_reduce(PAYLOAD, tuple(DimSpan(dim, 4) for dim in range(3)))
    split = ideal_bandwidth_split(op, gbps(TOTAL_GBPS))
    libra_bw = [split[dim] for dim in range(3)]
    results["LIBRA-only"] = (
        multirail_all_reduce_time(torus, libra_bw, PAYLOAD, CHUNKS),
        network_cost(torus, libra_bw, model),
    )

    codesign = cooptimize_with_tacos(
        torus, gbps(TOTAL_GBPS), PAYLOAD, CHUNKS, objective="perf_per_cost"
    )
    results["LIBRA+TACOS"] = (codesign.all_reduce_time, codesign.network_cost)
    return results


def test_fig20_tacos(benchmark):
    results = run_experiment()
    print_header("Fig. 20 — 1 GB All-Reduce, 8 chunks, 3D-Torus @ 1,000 GB/s per NPU")
    print_table(
        ["configuration", "All-Reduce time (ms)", "network cost ($)", "time×cost"],
        [
            (name, time * 1e3, f"{cost:,.0f}", time * cost)
            for name, (time, cost) in results.items()
        ],
    )
    lt_time, lt_cost = results["LIBRA+TACOS"]
    eq_time, eq_cost = results["EqualBW+TACOS"]
    lo_time, lo_cost = results["LIBRA-only"]
    print(
        f"LIBRA+TACOS vs LIBRA-only: {lo_time / lt_time:.2f}x faster "
        f"(paper: 1.25x); vs TACOS-only: {eq_time / lt_time:.2f}x "
        f"(paper: 1.08x); perf-per-cost vs TACOS-only: "
        f"{(eq_time * eq_cost) / (lt_time * lt_cost):.2f}x (paper: 1.36x)"
    )

    # Shape: the co-design beats the staged algorithm on LIBRA's own network
    # and wins clearly on perf-per-cost. Its perf-per-cost pick may trade a
    # little raw speed for cost (the paper's 1.08x speed edge over
    # TACOS-only does not fully reproduce — see EXPERIMENTS.md); the
    # perf-objective pick is never slower than TACOS-on-EqualBW because the
    # equal allocation is in its candidate family.
    assert lt_time < lo_time
    assert lt_time <= eq_time * 1.25
    assert (eq_time * eq_cost) / (lt_time * lt_cost) > 1.1
    perf_pick = cooptimize_with_tacos(
        get_topology("3D-Torus"), gbps(TOTAL_GBPS), PAYLOAD, CHUNKS, objective="perf"
    )
    assert perf_pick.all_reduce_time <= eq_time * 1.0001

    benchmark.pedantic(run_experiment, rounds=1, iterations=1)

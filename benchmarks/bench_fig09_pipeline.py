"""Fig. 9 — chunk pipelining under three bandwidth allocations.

The paper draws the 4-chunk All-Reduce pipeline on a 3D network for (a) an
underprovisioned Dim 1, (b) an underprovisioned Dim 2, and (c) an ideally
distributed allocation. This bench simulates all three and reports the
per-dimension utilizations the figure shades — the starved dimension is
saturated while the others idle in (a)/(b), and (c) runs every dimension
near full utilization.

It also reports the pipelining ablation the design calls out: the gap
between the chunked simulation and the closed-form (infinite-pipelining)
model as the chunk count grows.
"""

import pytest

from _common import print_header, print_table
from repro.collectives import (
    DimSpan,
    all_reduce,
    collective_time,
    ideal_bandwidth_split,
)
from repro.simulator import simulate_collective
from repro.utils import gb, gbps

OP = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 4), DimSpan(2, 4)))


def scenario_bandwidths() -> dict[str, list[float]]:
    split = ideal_bandwidth_split(OP, gbps(600))
    return {
        "(a) Dim1 starved": [gbps(20), gbps(290), gbps(290)],
        "(b) Dim2 starved": [gbps(290), gbps(20), gbps(290)],
        "(c) ideal split": [split[dim] for dim in range(3)],
    }


def test_fig09_pipeline(benchmark):
    from repro.simulator import render_timeline

    print_header("Fig. 9 — 4-chunk All-Reduce pipelines on a 3D network")
    rows = []
    utils = {}
    timelines = {}
    for label, bandwidths in scenario_bandwidths().items():
        sim = simulate_collective(OP, bandwidths, num_chunks=4)
        utils[label] = sim.report.per_dim_utilization
        timelines[label] = sim.timeline
        rows.append(
            (
                label,
                f"{sim.finish_time * 1e3:.2f} ms",
                *(f"{u:.2f}" for u in sim.report.per_dim_utilization),
                f"{sim.report.aggregate_utilization:.2f}",
            )
        )
    print_table(
        ["scenario", "time", "util D1", "util D2", "util D3", "aggregate"], rows
    )
    for label, events in timelines.items():
        print(f"\n{label} (a-d = Reduce-Scatter chunks, 0-3 = All-Gather):")
        print(render_timeline(events, 3, width=64, phase_markers=True))

    assert utils["(a) Dim1 starved"][0] > 0.95
    assert max(utils["(a) Dim1 starved"][1:]) < 0.25
    assert utils["(b) Dim2 starved"][1] > 0.9
    assert utils["(b) Dim2 starved"][0] < 0.3
    # At 4 chunks the ideal split still shows the "inevitable scheduling
    # bubbles" the paper mentions; deep pipelining removes them.
    assert min(utils["(c) ideal split"]) > 0.55
    deep = simulate_collective(
        OP, scenario_bandwidths()["(c) ideal split"], num_chunks=64
    )
    assert min(deep.report.per_dim_utilization) > 0.9

    print_header("Pipelining ablation — chunked simulation vs closed form")
    bandwidths = [gbps(290), gbps(200), gbps(110)]
    ideal = collective_time(OP, bandwidths)
    rows = []
    previous_gap = float("inf")
    for chunks in (1, 2, 4, 8, 16, 32, 64):
        sim = simulate_collective(OP, bandwidths, num_chunks=chunks)
        gap = sim.finish_time / ideal - 1.0
        rows.append((chunks, f"{sim.finish_time * 1e3:.3f} ms", f"{gap * 100:.1f}%"))
        assert gap <= previous_gap + 1e-9
        previous_gap = gap
    print_table(["chunks", "simulated time", "gap vs closed form"], rows)
    assert previous_gap == pytest.approx(0.0, abs=0.2)

    benchmark(lambda: simulate_collective(OP, bandwidths, num_chunks=64))

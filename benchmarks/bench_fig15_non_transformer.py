"""Fig. 15 — ResNet-50 and DLRM on the 4D-4K network.

LIBRA optimizes non-transformer workloads without modification. The paper
notes ResNet-50's tiny step times make perf-per-cost heavily cost-driven
(PerfPerCostOptBW lands near PerfOptBW on that metric but builds ~15.41%
cheaper networks on average).
"""

import statistics

import pytest

from _common import BW_SWEEP_GBPS, optimize_workload, print_header, print_table
from repro.core import Scheme


def run_panel(workload: str):
    rows = []
    cheaper = []
    for bw in BW_SWEEP_GBPS:
        perf, baseline = optimize_workload(workload, "4D-4K", bw, Scheme.PERF_OPT)
        ppc, _ = optimize_workload(workload, "4D-4K", bw, Scheme.PERF_PER_COST_OPT)
        rows.append(
            (
                bw,
                perf.speedup_over(baseline),
                ppc.speedup_over(baseline),
                perf.perf_per_cost_gain_over(baseline),
                ppc.perf_per_cost_gain_over(baseline),
            )
        )
        cheaper.append(1.0 - ppc.network_cost / perf.network_cost)
    return rows, cheaper


def test_fig15_non_transformer(benchmark):
    savings = {}
    for workload in ("ResNet-50", "DLRM"):
        rows, cheaper = run_panel(workload)
        savings[workload] = statistics.mean(cheaper)
        print_header(f"Fig. 15 — {workload} on 4D-4K")
        print_table(
            [
                "BW (GB/s)",
                "PerfOpt speedup",
                "PerfPerCost speedup",
                "PerfOpt ppc",
                "PerfPerCost ppc",
            ],
            rows,
        )
        for _, perf_speedup, _, perf_ppc, ppc_ppc in rows:
            assert perf_speedup >= 1.0 - 1e-6
            assert ppc_ppc >= perf_ppc * 0.999

    print_header("Fig. 15 summary")
    for workload, saving in savings.items():
        print(f"{workload}: PerfPerCostOpt networks {saving * 100:.2f}% cheaper "
              "than PerfOpt on average")
    print("paper reference: 15.41% cheaper on average (both workloads pooled)")

    # Shape: the cost-aware scheme buys meaningfully cheaper networks.
    assert statistics.mean(savings.values()) > 0.05

    benchmark.pedantic(
        lambda: optimize_workload("DLRM", "4D-4K", 500, Scheme.PERF_PER_COST_OPT),
        rounds=3,
        iterations=1,
    )
